#include "scenario/scenario.h"

#include <bit>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/aggregate_dynamics.h"
#include "core/finite_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/step_kernel.h"
#include "protocol/protocol_engine.h"
#include "support/rng.h"

namespace sgl::scenario {
namespace {

/// finite_dynamics that keeps its (possibly generated) graph alive.
class networked_dynamics final : public core::finite_dynamics {
 public:
  networked_dynamics(const core::dynamics_params& params, std::size_t num_agents,
                     std::shared_ptr<const graph::graph> topology)
      : finite_dynamics{params, num_agents}, topology_{std::move(topology)} {
    set_topology(topology_.get());
  }

 private:
  std::shared_ptr<const graph::graph> topology_;
};

/// rows × cols for lattice families: taken from the spec, or the most
/// square factorization of N when unset.
std::pair<std::size_t, std::size_t> lattice_shape(const topology_spec& spec,
                                                  std::size_t num_agents) {
  if (spec.rows != 0 || spec.cols != 0) {
    if (spec.rows * spec.cols != num_agents) {
      throw std::invalid_argument{"build_topology: rows * cols != num_agents"};
    }
    return {spec.rows, spec.cols};
  }
  auto rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(num_agents)));
  while (rows > 1 && num_agents % rows != 0) --rows;
  return {rows, num_agents / rows};
}

/// The cache key: family, N, and exactly the fields build_topology reads
/// for that family — nothing else, so sweeps over unrelated keys hit.
/// Doubles are keyed by their bit pattern (the cache must distinguish what
/// the generator would distinguish, no more).
std::string topology_cache_key(const topology_spec& spec, std::size_t num_agents) {
  using family = topology_spec::family_kind;
  std::string key = std::to_string(static_cast<int>(spec.family));
  key += ':';
  key += std::to_string(num_agents);
  const auto add_u64 = [&key](std::uint64_t v) {
    key += ':';
    key += std::to_string(v);
  };
  const auto add_double = [&add_u64](double v) {
    add_u64(std::bit_cast<std::uint64_t>(v));
  };
  switch (spec.family) {
    case family::none:
    case family::complete:
    case family::ring:
    case family::star:
      break;
    case family::grid:
    case family::torus:
      add_u64(spec.rows);
      add_u64(spec.cols);
      break;
    case family::erdos_renyi:
      add_double(spec.edge_probability);
      add_u64(spec.seed);
      break;
    case family::watts_strogatz:
      add_u64(spec.degree);
      add_double(spec.rewire_probability);
      add_u64(spec.seed);
      break;
    case family::barabasi_albert:
      add_u64(spec.degree);
      add_u64(spec.seed);
      break;
    case family::two_cliques:
      add_u64(spec.bridges);
      break;
  }
  return key;
}

struct topology_cache_state {
  std::mutex mutex;
  struct entry {
    std::string key;
    std::shared_ptr<const graph::graph> graph;
  };
  std::deque<entry> entries;  // MRU at the front, capacity k_capacity
  topology_cache_stats stats;
  static constexpr std::size_t k_capacity = 3;
};

topology_cache_state& topology_cache() {
  static topology_cache_state cache;
  return cache;
}

netsim::fault_action::kind to_netsim_kind(fault_action_spec::action_kind kind) {
  switch (kind) {
    case fault_action_spec::action_kind::partition:
      return netsim::fault_action::kind::partition;
    case fault_action_spec::action_kind::crash_wave:
      return netsim::fault_action::kind::crash_wave;
    case fault_action_spec::action_kind::restart_wave:
      return netsim::fault_action::kind::restart_wave;
    case fault_action_spec::action_kind::degrade:
      return netsim::fault_action::kind::degrade;
  }
  throw std::invalid_argument{"faults: unknown action kind"};
}

netsim::link_class to_netsim_class(fault_action_spec::link_class_kind kind) {
  switch (kind) {
    case fault_action_spec::link_class_kind::all: return netsim::link_class::all;
    case fault_action_spec::link_class_kind::intra: return netsim::link_class::intra;
    case fault_action_spec::link_class_kind::cross: return netsim::link_class::cross;
    case fault_action_spec::link_class_kind::nodes: return netsim::link_class::nodes;
  }
  throw std::invalid_argument{"faults: unknown link class"};
}

/// The protocol engine's configuration, assembled from the spec's params
/// and protocol.* / faults.* fields.  Shared by make_engine and
/// validate_spec so the ranges are checked exactly where the values are
/// read.
protocol::engine_config to_engine_config(const scenario_spec& spec) {
  protocol::engine_config config;
  config.dynamics = spec.params;
  config.round_interval = spec.protocol.round_interval;
  config.base_latency = spec.protocol.base_latency;
  config.jitter_mean = spec.protocol.jitter_mean;
  config.drop_probability = spec.protocol.drop_probability;
  if (spec.protocol.max_retries > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument{
        "protocol.max_retries exceeds the engine's 32-bit retry budget"};
  }
  config.max_retries = static_cast<std::uint32_t>(spec.protocol.max_retries);
  config.crash_rate = spec.protocol.crash_rate;
  config.restart_rate = spec.protocol.restart_rate;
  config.sticky = spec.protocol.sticky;
  config.lockstep = spec.protocol.lockstep;
  // The fault schedule's round-denominated times become netsim seconds
  // here; everything else passes through and is re-validated by
  // netsim::fault_schedule::validate against the node count.
  config.faults.actions.reserve(spec.faults.actions.size());
  for (std::size_t i = 0; i < spec.faults.actions.size(); ++i) {
    const fault_action_spec& action = spec.faults.actions[i];
    netsim::fault_action out;
    out.which = to_netsim_kind(action.kind);
    out.at = action.at * spec.protocol.round_interval;
    out.until =
        action.until < 0.0 ? -1.0 : action.until * spec.protocol.round_interval;
    out.targets.reserve(action.targets.size());
    for (const std::uint64_t id : action.targets) {
      if (id > std::numeric_limits<netsim::node_id>::max()) {
        throw std::invalid_argument{"faults." + std::to_string(i) +
                                    ".targets: id " + std::to_string(id) +
                                    " exceeds the 32-bit node-id range"};
      }
      out.targets.push_back(static_cast<netsim::node_id>(id));
    }
    out.fraction = action.fraction;
    out.degrade_class = to_netsim_class(action.link_class);
    out.link.base_latency = action.base_latency;
    out.link.jitter_mean = action.jitter_mean;
    out.link.drop_probability = action.drop_probability;
    config.faults.actions.push_back(std::move(out));
  }
  config.record_trace = spec.faults.record;
  config.trace_capacity = static_cast<std::size_t>(spec.faults.record_capacity);
  return config;
}

}  // namespace

std::shared_ptr<const graph::graph> shared_topology(const topology_spec& spec,
                                                    std::size_t num_agents) {
  const std::string key = topology_cache_key(spec, num_agents);
  auto& cache = topology_cache();
  {
    const std::scoped_lock lock{cache.mutex};
    for (std::size_t i = 0; i < cache.entries.size(); ++i) {
      if (cache.entries[i].key != key) continue;
      ++cache.stats.hits;
      if (i != 0) {
        auto entry = std::move(cache.entries[i]);
        cache.entries.erase(cache.entries.begin() + static_cast<std::ptrdiff_t>(i));
        cache.entries.push_front(std::move(entry));
      }
      return cache.entries.front().graph;
    }
    ++cache.stats.misses;
  }
  // Build outside the lock: concurrent misses may build twice, but never
  // block each other behind a multi-second generation.
  auto built = std::make_shared<const graph::graph>(build_topology(spec, num_agents));
  {
    const std::scoped_lock lock{cache.mutex};
    cache.entries.push_front({key, built});
    while (cache.entries.size() > topology_cache_state::k_capacity) {
      cache.entries.pop_back();
    }
  }
  return built;
}

topology_cache_stats shared_topology_stats() noexcept {
  auto& cache = topology_cache();
  const std::scoped_lock lock{cache.mutex};
  return cache.stats;
}

engine_kind resolved_engine(const scenario_spec& spec) noexcept {
  if (spec.engine != engine_kind::auto_select) return spec.engine;
  if (!spec.groups.empty()) return engine_kind::grouped;
  if (spec.topology.family != topology_spec::family_kind::none ||
      !spec.agent_rules.empty()) {
    return engine_kind::agent_based;
  }
  if (spec.num_agents == 0) return engine_kind::infinite;
  return engine_kind::aggregate;
}

std::string topology_build_error(const topology_spec& spec, std::size_t num_agents) {
  using family = topology_spec::family_kind;
  if (spec.family == family::none) return "topology.family is none (nothing to build)";
  if (num_agents == 0) return "a topology needs num_agents >= 1";
  switch (spec.family) {
    case family::none:
      break;  // handled above
    case family::complete:
    case family::ring:
    case family::star:
      break;
    case family::grid:
    case family::torus:
      if ((spec.rows != 0 || spec.cols != 0) && spec.rows * spec.cols != num_agents) {
        return "topology.rows * topology.cols != num_agents";
      }
      break;
    case family::erdos_renyi:
      if (!(spec.edge_probability >= 0.0 && spec.edge_probability <= 1.0)) {
        return "topology.edge_probability outside [0, 1]";
      }
      break;
    case family::watts_strogatz:
      if (num_agents < 3) return "watts_strogatz needs num_agents >= 3";
      if (spec.degree == 0 || 2 * spec.degree >= num_agents) {
        return "watts_strogatz needs 0 < 2 * topology.degree < num_agents";
      }
      if (!(spec.rewire_probability >= 0.0 && spec.rewire_probability <= 1.0)) {
        return "topology.rewire_probability outside [0, 1]";
      }
      break;
    case family::barabasi_albert:
      if (spec.degree == 0) return "barabasi_albert needs topology.degree >= 1";
      if (num_agents <= spec.degree) {
        return "barabasi_albert needs num_agents > topology.degree";
      }
      break;
    case family::two_cliques:
      if (num_agents % 2 != 0) return "two_cliques needs even num_agents";
      if (num_agents / 2 < 2) return "two_cliques needs num_agents >= 4";
      if (spec.bridges == 0 || spec.bridges > num_agents / 2) {
        return "topology.bridges must be in [1, num_agents / 2]";
      }
      break;
  }
  return {};
}

graph::graph build_topology(const topology_spec& spec, std::size_t num_agents) {
  using family = topology_spec::family_kind;
  rng gen{spec.seed};
  switch (spec.family) {
    case family::none:
      throw std::invalid_argument{"build_topology: family is none"};
    case family::complete:
      return graph::graph::complete(num_agents);
    case family::ring:
      return graph::graph::ring(num_agents);
    case family::grid: {
      const auto [rows, cols] = lattice_shape(spec, num_agents);
      return graph::graph::grid(rows, cols, /*wrap=*/false);
    }
    case family::torus: {
      const auto [rows, cols] = lattice_shape(spec, num_agents);
      return graph::graph::grid(rows, cols, /*wrap=*/true);
    }
    case family::star:
      return graph::graph::star(num_agents);
    case family::erdos_renyi:
      return graph::graph::erdos_renyi(num_agents, spec.edge_probability, gen);
    case family::watts_strogatz:
      return graph::graph::watts_strogatz(num_agents, spec.degree,
                                          spec.rewire_probability, gen);
    case family::barabasi_albert:
      return graph::graph::barabasi_albert(num_agents, spec.degree, gen);
    case family::two_cliques:
      if (num_agents % 2 != 0) {
        throw std::invalid_argument{"build_topology: two_cliques needs even N"};
      }
      return graph::graph::two_cliques(num_agents / 2, spec.bridges);
  }
  throw std::invalid_argument{"build_topology: unknown family"};
}

core::env_factory make_environment(const environment_spec& spec) {
  using family = environment_spec::family_kind;
  switch (spec.family) {
    case family::bernoulli:
      return [etas = spec.etas] { return std::make_unique<env::bernoulli_rewards>(etas); };
    case family::exclusive:
      return [p = spec.etas] { return std::make_unique<env::exclusive_rewards>(p); };
    case family::switching:
      return [base = spec.etas, period = spec.period] {
        return std::make_unique<env::switching_rewards>(base, period);
      };
    case family::drifting:
      return [start = spec.etas, end = spec.end_etas, horizon = spec.horizon] {
        return std::make_unique<env::drifting_rewards>(start, end, horizon);
      };
  }
  throw std::invalid_argument{"make_environment: unknown family"};
}

core::engine_factory make_engine(const scenario_spec& spec) {
  const engine_kind kind = resolved_engine(spec);
  const bool networked = spec.topology.family != topology_spec::family_kind::none;
  if (networked && kind != engine_kind::agent_based && kind != engine_kind::protocol) {
    throw std::invalid_argument{
        "make_engine: a topology requires the agent-based or protocol engine"};
  }
  if (!spec.agent_rules.empty() && kind != engine_kind::agent_based) {
    throw std::invalid_argument{
        "make_engine: per-agent rules require the agent-based engine"};
  }
  switch (kind) {
    case engine_kind::infinite:
      return core::make_infinite_engine_factory(spec.params, spec.start);
    case engine_kind::aggregate:
      return core::make_finite_engine_factory(spec.params, spec.num_agents,
                                              core::finite_engine::aggregate);
    case engine_kind::agent_based: {
      if (spec.num_agents == 0) {
        throw std::invalid_argument{"make_engine: agent-based engine needs N >= 1"};
      }
      std::shared_ptr<const graph::graph> topology = spec.prebuilt_graph;
      if (networked && topology == nullptr) {
        topology = shared_topology(spec.topology, static_cast<std::size_t>(spec.num_agents));
      }
      return [params = spec.params, num_agents = spec.num_agents, topology,
              rules = spec.agent_rules, threads = spec.engine_threads,
              kernel = spec.engine_kernel]() -> std::unique_ptr<core::dynamics_engine> {
        std::unique_ptr<core::finite_dynamics> engine;
        if (topology != nullptr) {
          engine = std::make_unique<networked_dynamics>(
              params, static_cast<std::size_t>(num_agents), topology);
        } else {
          engine = std::make_unique<core::finite_dynamics>(
              params, static_cast<std::size_t>(num_agents));
        }
        if (!rules.empty()) engine->set_agent_rules(rules);
        engine->set_threads(threads);
        engine->set_kernel(kernel);
        return engine;
      };
    }
    case engine_kind::grouped:
      if (spec.groups.empty()) {
        throw std::invalid_argument{"make_engine: grouped engine needs groups"};
      }
      return [params = spec.params, groups = spec.groups] {
        return std::make_unique<core::grouped_dynamics>(params, groups);
      };
    case engine_kind::protocol: {
      if (spec.num_agents == 0) {
        throw std::invalid_argument{"make_engine: protocol engine needs N >= 1"};
      }
      std::shared_ptr<const graph::graph> topology = spec.prebuilt_graph;
      if (networked && topology == nullptr) {
        topology = shared_topology(spec.topology, static_cast<std::size_t>(spec.num_agents));
      }
      return [config = to_engine_config(spec), num_agents = spec.num_agents,
              topology] {
        return std::make_unique<protocol::protocol_engine>(
            config, static_cast<std::size_t>(num_agents), topology);
      };
    }
    case engine_kind::auto_select:
      break;  // unreachable: resolve() never returns auto_select
  }
  throw std::invalid_argument{"make_engine: unknown engine kind"};
}

namespace {

/// Key-named validation of the faults.* family, in the PR 5 error style:
/// every failure names the offending `faults.N.field` key and the violated
/// bound.  netsim::fault_schedule::validate re-checks the same ground at
/// engine construction as a backstop, but with action indices instead of
/// scenario keys — this is the version users see.
template <typename Where>
void validate_faults(const scenario_spec& spec, const Where& where) {
  using action_kind = fault_action_spec::action_kind;
  const auto key = [](std::size_t i, const char* field) {
    return "faults." + std::to_string(i) + "." + field;
  };
  for (std::size_t i = 0; i < spec.faults.actions.size(); ++i) {
    const fault_action_spec& action = spec.faults.actions[i];
    if (!(action.at >= 0.0)) {
      throw std::invalid_argument{where("") + key(i, "at") + " = " +
                                  std::to_string(action.at) + " must be >= 0"};
    }
    if (action.until >= 0.0 && !(action.until > action.at)) {
      throw std::invalid_argument{
          where("") + key(i, "until") + " = " + std::to_string(action.until) +
          " must be > " + key(i, "at") + " = " + std::to_string(action.at)};
    }
    if (action.fraction != -1.0 &&
        !(action.fraction >= 0.0 && action.fraction <= 1.0)) {
      throw std::invalid_argument{where("") + key(i, "fraction") + " = " +
                                  std::to_string(action.fraction) +
                                  " outside [0, 1]"};
    }
    for (const std::uint64_t id : action.targets) {
      if (id >= spec.num_agents) {
        throw std::invalid_argument{
            where("") + key(i, "targets") + " names node " + std::to_string(id) +
            " but num_agents = " + std::to_string(spec.num_agents) +
            " (ids must be < num_agents)"};
      }
    }
    switch (action.kind) {
      case action_kind::partition:
        if (action.until < 0.0) {
          throw std::invalid_argument{
              where("") + key(i, "until") +
              " is required for a partition (it heals automatically)"};
        }
        if (action.targets.empty()) {
          throw std::invalid_argument{
              where("") + key(i, "targets") +
              " must name the partition's side A (non-empty)"};
        }
        if (action.targets.size() >= spec.num_agents) {
          throw std::invalid_argument{
              where("") + key(i, "targets") + " names all " +
              std::to_string(spec.num_agents) +
              " nodes; a partition needs a non-empty other side"};
        }
        if (action.fraction != -1.0) {
          throw std::invalid_argument{
              where("") + key(i, "fraction") + " does not apply to a partition"};
        }
        for (std::size_t j = 0; j < i; ++j) {
          const fault_action_spec& other = spec.faults.actions[j];
          if (other.kind != action_kind::partition) continue;
          if (action.at < other.until && other.at < action.until) {
            throw std::invalid_argument{
                where("") + "faults." + std::to_string(i) + " window [" +
                std::to_string(action.at) + ", " + std::to_string(action.until) +
                ") overlaps faults." + std::to_string(j) + " window [" +
                std::to_string(other.at) + ", " + std::to_string(other.until) +
                ") — netsim supports one cut at a time"};
          }
        }
        break;
      case action_kind::crash_wave:
        if (action.until >= 0.0) {
          throw std::invalid_argument{
              where("") + key(i, "until") +
              " does not apply to a crash_wave (a point event)"};
        }
        if (action.targets.empty() && action.fraction == -1.0) {
          throw std::invalid_argument{where("") + "faults." + std::to_string(i) +
                                      ": a crash_wave needs " + key(i, "targets") +
                                      " or " + key(i, "fraction")};
        }
        if (!action.targets.empty() && action.fraction != -1.0) {
          throw std::invalid_argument{
              where("") + "faults." + std::to_string(i) + ": set " +
              key(i, "targets") + " or " + key(i, "fraction") + ", not both"};
        }
        break;
      case action_kind::restart_wave:
        if (action.until >= 0.0) {
          throw std::invalid_argument{
              where("") + key(i, "until") +
              " does not apply to a restart_wave (a point event)"};
        }
        if (!action.targets.empty() && action.fraction != -1.0) {
          throw std::invalid_argument{
              where("") + "faults." + std::to_string(i) + ": set " +
              key(i, "targets") + " or " + key(i, "fraction") + ", not both"};
        }
        break;
      case action_kind::degrade:
        if (action.link_class != fault_action_spec::link_class_kind::all &&
            action.targets.empty()) {
          throw std::invalid_argument{
              where("") + key(i, "targets") +
              " must be non-empty when faults." + std::to_string(i) +
              ".link_class is not \"all\""};
        }
        if (action.fraction != -1.0) {
          throw std::invalid_argument{
              where("") + key(i, "fraction") + " does not apply to a degrade"};
        }
        if (!(action.base_latency >= 0.0)) {
          throw std::invalid_argument{where("") + key(i, "base_latency") +
                                      " = " + std::to_string(action.base_latency) +
                                      " must be >= 0"};
        }
        if (!(action.jitter_mean >= 0.0)) {
          throw std::invalid_argument{where("") + key(i, "jitter_mean") + " = " +
                                      std::to_string(action.jitter_mean) +
                                      " must be >= 0"};
        }
        if (!(action.drop_probability >= 0.0 && action.drop_probability <= 1.0)) {
          throw std::invalid_argument{
              where("") + key(i, "drop_probability") + " = " +
              std::to_string(action.drop_probability) + " outside [0, 1]"};
        }
        break;
    }
  }
}

}  // namespace

void validate_spec(const scenario_spec& spec) {
  const auto where = [&spec](const char* what) {
    std::string message{"scenario"};
    if (!spec.name.empty()) {
      message += " '";
      message += spec.name;
      message += "'";
    }
    message += ": ";
    message += what;
    return message;
  };
  spec.params.validate();
  const std::size_t m = spec.params.num_options;
  if (spec.environment.etas.size() != m) {
    throw std::invalid_argument{
        where("environment.etas has ") + std::to_string(spec.environment.etas.size()) +
        " entries but params.num_options = " + std::to_string(m) + " (they must match)"};
  }
  if (spec.environment.family == environment_spec::family_kind::drifting &&
      spec.environment.end_etas.size() != m) {
    throw std::invalid_argument{
        where("environment.end_etas has ") +
        std::to_string(spec.environment.end_etas.size()) +
        " entries but params.num_options = " + std::to_string(m) + " (they must match)"};
  }
  if (!spec.start.empty() && spec.start.size() != m) {
    throw std::invalid_argument{
        where("start has ") + std::to_string(spec.start.size()) +
        " entries but params.num_options = " + std::to_string(m) + " (they must match)"};
  }

  // Field families the resolved engine would silently ignore are errors:
  // the run would not be what the spec claims.
  const engine_kind kind = resolved_engine(spec);
  if (!spec.start.empty() && kind != engine_kind::infinite) {
    throw std::invalid_argument{
        where("a nonuniform start seeds the infinite engine only; this spec "
              "resolves to another engine (drop start or set engine = "
              "\"infinite\" with num_agents = 0)")};
  }
  if (!spec.groups.empty() && kind != engine_kind::grouped) {
    throw std::invalid_argument{
        where("groups configure the grouped engine only; this spec resolves "
              "to another engine (drop groups or set engine = \"grouped\")")};
  }
  if (!spec.agent_rules.empty() && kind != engine_kind::agent_based) {
    throw std::invalid_argument{
        where("per-agent rules configure the agent-based engine only (set "
              "engine = \"agent_based\" or drop agent_rules)")};
  }
  if (spec.engine_kernel == core::kernel_kind::simd &&
      !core::kernel::vector_isa_available()) {
    throw std::invalid_argument{
        where("kernel = \"simd\" but this host has no vector ISA the build "
              "can dispatch to; use kernel = \"auto\" (falls back to scalar) "
              "or \"scalar\"")};
  }

  // Everything make_engine / the factories would reject is rejected here
  // too, so "validate_spec passes" means the run cannot die later inside a
  // graph/engine/environment constructor (the contract validate_spec_error
  // and the property-test generator build on).
  const bool networked = spec.topology.family != topology_spec::family_kind::none;
  if (networked && kind != engine_kind::agent_based && kind != engine_kind::protocol) {
    throw std::invalid_argument{
        where("a topology requires the agent-based or protocol engine")};
  }
  if (networked && spec.prebuilt_graph == nullptr) {
    const std::string error =
        topology_build_error(spec.topology, static_cast<std::size_t>(spec.num_agents));
    if (!error.empty()) throw std::invalid_argument{where(error.c_str())};
  }
  if (kind == engine_kind::agent_based && spec.num_agents == 0) {
    throw std::invalid_argument{where("the agent-based engine needs num_agents >= 1")};
  }
  if (!spec.agent_rules.empty() && spec.agent_rules.size() != spec.num_agents) {
    throw std::invalid_argument{
        where("agent_rules has ") + std::to_string(spec.agent_rules.size()) +
        " entries but num_agents = " + std::to_string(spec.num_agents) +
        " (they must match)"};
  }
  for (std::size_t i = 0; i < spec.agent_rules.size(); ++i) {
    const core::adoption_rule& rule = spec.agent_rules[i];
    if (!(rule.alpha >= 0.0 && rule.alpha <= rule.beta && rule.beta <= 1.0)) {
      throw std::invalid_argument{where("agent_rules.") + std::to_string(i) +
                                  " needs 0 <= alpha <= beta <= 1"};
    }
  }
  if (kind == engine_kind::grouped && spec.groups.empty()) {
    throw std::invalid_argument{where("the grouped engine needs groups")};
  }
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    const core::rule_group& group = spec.groups[i];
    if (group.size == 0) {
      throw std::invalid_argument{where("groups.") + std::to_string(i) +
                                  ".size must be >= 1"};
    }
    if (!(group.rule.alpha >= 0.0 && group.rule.alpha <= group.rule.beta &&
          group.rule.beta <= 1.0)) {
      throw std::invalid_argument{where("groups.") + std::to_string(i) +
                                  " needs 0 <= alpha <= beta <= 1"};
    }
  }
  if (!spec.start.empty()) {
    double total = 0.0;
    for (const double x : spec.start) {
      if (!(x >= 0.0)) throw std::invalid_argument{where("start has negative mass")};
      total += x;
    }
    if (std::abs(total - 1.0) > 1e-9) {
      throw std::invalid_argument{where("start must sum to 1")};
    }
  }
  // Environment bounds (eta ranges, exclusive win-probability sum, period /
  // drift-horizon minimums) live in the env constructors; building one
  // instance here is O(m) and surfaces them with the scenario's name
  // attached instead of exploding mid-run inside a worker.
  try {
    (void)make_environment(spec.environment)();
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument{where("environment: ") + error.what()};
  }
  if (kind == engine_kind::protocol) {
    if (spec.num_agents == 0) {
      throw std::invalid_argument{where("the protocol engine needs num_agents >= 1")};
    }
    validate_faults(spec, where);
    try {
      to_engine_config(spec).validate();
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument{where(error.what())};
    }
  } else {
    if (spec.protocol != protocol_spec{}) {
      // apply_override gates protocol.* keys at assignment time, but the
      // engine can legally be changed afterwards (later lines win); catch
      // the flip here so non-default protocol knobs are never silently
      // dropped by a non-protocol run.
      throw std::invalid_argument{
          where("protocol.* fields are set but the spec does not run the "
                "protocol engine (set engine = \"protocol\" or drop them)")};
    }
    if (spec.faults != fault_schedule_spec{}) {
      throw std::invalid_argument{
          where("faults.* fields are set but the spec does not run the "
                "protocol engine (set engine = \"protocol\" or drop them)")};
    }
  }
}

std::string validate_spec_error(const scenario_spec& spec) {
  try {
    validate_spec(spec);
  } catch (const std::invalid_argument& error) {
    std::string message{error.what()};
    return message.empty() ? std::string{"invalid spec"} : message;
  }
  return {};
}

core::run_result run(const scenario_spec& spec, const core::run_config& config) {
  validate_spec(spec);
  return core::run_scenario(make_engine(spec), make_environment(spec.environment),
                            config);
}

core::probe_list run_probes(const scenario_spec& spec, const core::run_config& config,
                            std::span<const std::string> probe_specs) {
  validate_spec(spec);
  static const std::vector<std::string> k_default{"regret"};
  const std::span<const std::string> specs =
      !probe_specs.empty() ? probe_specs
      : !spec.probes.empty() ? std::span<const std::string>{spec.probes}
                             : std::span<const std::string>{k_default};
  const core::probe_list prototypes = core::make_probes(specs);
  std::vector<const core::probe*> pointers;
  pointers.reserve(prototypes.size());
  for (const auto& p : prototypes) pointers.push_back(p.get());
  return core::run_with_probes(make_engine(spec), make_environment(spec.environment),
                               config, pointers);
}

}  // namespace sgl::scenario
