#include "scenario/registry.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace sgl::scenario {
namespace {

scenario_spec base(std::string name, std::string description) {
  scenario_spec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  return spec;
}

std::vector<scenario_spec> build_catalog() {
  std::vector<scenario_spec> catalog;

  {
    // The README/quickstart configuration: a small group on four options.
    auto spec = base("quickstart",
                     "4 options, N=1000 agents, theorem-regime parameters "
                     "(beta=0.65), Bernoulli qualities (0.85, 0.45, 0.40, 0.35)");
    spec.params = core::theorem_params(4, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 1000;
    spec.environment.etas = {0.85, 0.45, 0.40, 0.35};
    catalog.push_back(std::move(spec));
  }
  {
    // Theorem 4.3's setting (bench e01).
    auto spec = base("theorem-infinite",
                     "Theorem 4.3: infinite-population stochastic MWU, m=10, "
                     "beta=0.62, canonical two-level qualities 0.85/0.35");
    spec.params = core::theorem_params(10, 0.62);
    spec.engine = engine_kind::infinite;
    spec.num_agents = 0;
    spec.environment.etas = env::two_level_etas(10, 0.85, 0.35);
    catalog.push_back(std::move(spec));
  }
  {
    // Theorem 4.4's setting (bench e03); N is the natural override.
    auto spec = base("theorem-finite",
                     "Theorem 4.4: finite population via the exact aggregate "
                     "engine, m=10, beta=0.62, N=1000, qualities 0.85/0.35");
    spec.params = core::theorem_params(10, 0.62);
    spec.engine = engine_kind::aggregate;
    spec.num_agents = 1000;
    spec.environment.etas = env::two_level_etas(10, 0.85, 0.35);
    catalog.push_back(std::move(spec));
  }
  {
    // Theorem 4.6: recovery from an adversarial start.
    auto spec = base("nonuniform-start",
                     "Theorem 4.6: infinite dynamics started with 99% of the "
                     "mass on the worst option");
    spec.params = core::theorem_params(10, 0.62);
    spec.engine = engine_kind::infinite;
    spec.num_agents = 0;
    spec.environment.etas = env::two_level_etas(10, 0.85, 0.35);
    spec.start.assign(10, 0.01 / 9.0);
    spec.start.back() = 0.99;
    catalog.push_back(std::move(spec));
  }
  {
    // §2.1 example 2 / footnote 3: the Ellison–Fudenberg reduction.
    auto spec = base("ef-exclusive",
                     "Ellison-Fudenberg reduction: two options, exactly one "
                     "good per step (win probabilities 0.7/0.3)");
    spec.params = core::theorem_params(2, 0.65);
    spec.num_agents = 1000;
    spec.environment.family = environment_spec::family_kind::exclusive;
    spec.environment.etas = {0.7, 0.3};
    catalog.push_back(std::move(spec));
  }
  {
    // §6 "options represent stocks": the best option rotates.
    auto spec = base("switching-stocks",
                     "Non-stationary: qualities rotate one index every 400 "
                     "steps (m=5), the group must re-learn after each switch");
    spec.params = core::theorem_params(5, 0.65);
    spec.num_agents = 1000;
    spec.environment.family = environment_spec::family_kind::switching;
    spec.environment.etas = {0.85, 0.55, 0.45, 0.40, 0.35};
    spec.environment.period = 400;
    catalog.push_back(std::move(spec));
  }
  {
    // Slow drift with a best-option crossover halfway.
    auto spec = base("drifting-crossover",
                     "Non-stationary: qualities drift linearly over 2000 steps, "
                     "the initially-worst option ends up best");
    spec.params = core::theorem_params(3, 0.65);
    spec.num_agents = 1000;
    spec.environment.family = environment_spec::family_kind::drifting;
    spec.environment.etas = {0.80, 0.50, 0.30};
    spec.environment.end_etas = {0.30, 0.50, 0.80};
    spec.environment.horizon = 2000;
    catalog.push_back(std::move(spec));
  }
  {
    // §6 open problem 1, worst-conductance classic.
    auto spec = base("ring",
                     "Network-restricted sampling on the cycle C_900 — the "
                     "low-conductance stress case of Section 6's open problem");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 900;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::ring;
    catalog.push_back(std::move(spec));
  }
  {
    auto spec = base("small-world",
                     "Network-restricted sampling on a Watts-Strogatz small "
                     "world (N=900, k=5, rewire 0.1)");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 900;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::watts_strogatz;
    spec.topology.degree = 5;
    spec.topology.rewire_probability = 0.1;
    catalog.push_back(std::move(spec));
  }
  {
    auto spec = base("two-cliques",
                     "Network-restricted sampling on two 450-cliques joined by "
                     "one bridge — the information-bottleneck topology");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 900;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::two_cliques;
    spec.topology.bridges = 1;
    catalog.push_back(std::move(spec));
  }
  {
    auto spec = base("torus",
                     "Network-restricted sampling on the 30x30 torus (N=900)");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 900;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::torus;
    spec.topology.rows = 30;
    spec.topology.cols = 30;
    catalog.push_back(std::move(spec));
  }
  {
    // Large-N topology scenarios: the sharded network step (incremental
    // committed-neighbour view, per-(step, shard) streams) makes these
    // tractable; engine_threads = 0 puts every core on one replication.
    auto spec = base("network_ring_1e5",
                     "Network-restricted sampling on the cycle C_100000 — "
                     "large-N low-conductance scaling run (sharded engine, "
                     "all cores)");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 100000;
    spec.engine_threads = 0;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::ring;
    catalog.push_back(std::move(spec));
  }
  {
    auto spec = base("network_ba_1e6",
                     "Network-restricted sampling on a Barabasi-Albert graph "
                     "(N=10^6, attach=5) — heavy-tailed degrees at scale "
                     "(sharded engine, all cores)");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 1000000;
    spec.engine_threads = 0;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::barabasi_albert;
    spec.topology.degree = 5;
    catalog.push_back(std::move(spec));
  }
  {
    auto spec = base("network_smallworld_1e6",
                     "Network-restricted sampling on a Watts-Strogatz small "
                     "world (N=10^6, k=5, rewire 0.1) — high clustering, "
                     "short paths, at scale (sharded engine, all cores)");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 1000000;
    spec.engine_threads = 0;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::watts_strogatz;
    spec.topology.degree = 5;
    spec.topology.rewire_probability = 0.1;
    catalog.push_back(std::move(spec));
  }
  {
    // The canonical fully mixed spec for overrides and sweeps: the CI smoke
    // job runs it with --set params.beta=... and a --sweep grid.
    auto spec = base("mixed_baseline",
                     "Fully mixed homogeneous baseline: m=10, beta=0.62, "
                     "N=1000 via the exact aggregate engine — the canonical "
                     "spec to override (--set) and sweep");
    spec.params = core::theorem_params(10, 0.62);
    spec.engine = engine_kind::aggregate;
    spec.num_agents = 1000;
    spec.environment.etas = env::two_level_etas(10, 0.85, 0.35);
    catalog.push_back(std::move(spec));
  }
  {
    // §6 "stocks" + the recovery probe: time to re-concentrate after each
    // quality switch.
    auto spec = base("switching_recovery",
                     "Switching qualities (m=5, period 300) with the "
                     "recovery-time probe: steps until the new best option "
                     "regains 60% of the mass after each switch");
    spec.params = core::theorem_params(5, 0.65);
    spec.num_agents = 1000;
    spec.environment.family = environment_spec::family_kind::switching;
    spec.environment.etas = {0.85, 0.55, 0.45, 0.40, 0.35};
    spec.environment.period = 300;
    spec.probes = {"regret", "recovery(eps=0.4)"};
    catalog.push_back(std::move(spec));
  }
  {
    // The bottleneck topology + the hitting-time probe: consensus across
    // the bridge.
    auto spec = base("two_cliques_consensus",
                     "Two 300-cliques joined by two bridges with the "
                     "hitting-time probe: first step at which the best "
                     "option holds 75% of the mass across the bottleneck");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::agent_based;
    spec.num_agents = 600;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::two_cliques;
    spec.topology.bridges = 2;
    spec.probes = {"regret", "hitting_time(eps=0.25)"};
    catalog.push_back(std::move(spec));
  }
  {
    // Drifting qualities at scale: the O(m) aggregate engine makes N=1e5
    // cheap; the final histogram shows where the mass ends up after the
    // ranking inverts.  The drift span matches the CLI's default 400-step
    // run, so the inversion completes without extra flags.
    auto spec = base("drift_tracking_1e5",
                     "Drifting qualities at N=1e5 (exact aggregate engine): "
                     "the ranking inverts over 400 steps (the default "
                     "horizon); the final-histogram probe shows the "
                     "end-state mass per option");
    spec.params = core::theorem_params(3, 0.65);
    spec.engine = engine_kind::aggregate;
    spec.num_agents = 100000;
    spec.environment.family = environment_spec::family_kind::drifting;
    spec.environment.etas = {0.80, 0.50, 0.30};
    spec.environment.end_etas = {0.30, 0.50, 0.80};
    spec.environment.horizon = 400;
    spec.probes = {"regret", "final_histogram"};
    catalog.push_back(std::move(spec));
  }
  {
    // §6's converse at sensor-network scale: the protocol engine runs the
    // asynchronous netsim/gossip port of the dynamics, one round per
    // harness step, on a 100x100 torus (the lattice stand-in for a
    // geometric radio field).  Message/byte cost and commit latency ride
    // along as probe scalars.
    auto spec = base("gossip_sensor_1e4",
                     "Gossip protocol on a 100x100 sensor torus (N=10^4): "
                     "asynchronous rounds over 5%-latency links, with "
                     "message-cost and commit-latency accounting");
    spec.params = core::theorem_params(4, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 10000;
    spec.environment.etas = {0.85, 0.45, 0.40, 0.35};
    spec.topology.family = topology_spec::family_kind::torus;
    spec.probes = {"regret", "message_cost", "commit_latency"};
    catalog.push_back(std::move(spec));
  }
  {
    // The canonical lossy-link base: sweep protocol.drop_probability (or
    // jitter/latency) over it to chart convergence vs packet loss.
    auto spec = base("gossip_lossy_sweep",
                     "Fully mixed gossip over lossy links (N=500, 10% drop "
                     "by default) — the canonical base for "
                     "--sweep protocol.drop_probability grids");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 500;
    spec.environment.etas = {0.85, 0.35};
    spec.protocol.drop_probability = 0.1;
    spec.probes = {"regret", "message_cost", "commit_latency"};
    catalog.push_back(std::move(spec));
  }
  {
    // Churn: every round 2% of the nodes crash and 10% of the crashed
    // restart (rejoining uncommitted), so the population is perpetually
    // partially informed — the bounded-memory fault setting of the
    // collaborative-bandit line.
    auto spec = base("gossip_crash_recovery",
                     "Gossip under churn (N=400): 2% of nodes crash per "
                     "round, crashed nodes restart at 10% per round; the "
                     "adoption probe tracks committed/alive fractions");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 400;
    spec.environment.etas = {0.85, 0.35};
    spec.protocol.crash_rate = 0.02;
    spec.protocol.restart_rate = 0.1;
    spec.probes = {"regret", "adoption", "message_cost"};
    catalog.push_back(std::move(spec));
  }
  {
    // The protocol on the low-conductance classic: gossip partners
    // restricted to ring neighbours, jittery links.
    auto spec = base("gossip_ring_300",
                     "Gossip restricted to the cycle C_300 with exponential "
                     "link jitter — the protocol analogue of the Section 6 "
                     "low-conductance stress case");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 300;
    spec.environment.etas = {0.85, 0.35};
    spec.topology.family = topology_spec::family_kind::ring;
    spec.protocol.jitter_mean = 0.02;
    spec.probes = {"regret", "message_cost", "hitting_time(eps=0.25)"};
    catalog.push_back(std::move(spec));
  }
  {
    // The degenerate synchronous configuration: zero latency, zero drops,
    // lockstep replies, fully mixed, deep retry budget.  Its adoption law
    // provably matches finite_dynamics (tests/protocol_law_test.cpp); it
    // is the bridge between the message-passing and the agent-based
    // formulations.
    auto spec = base("gossip_sync_ideal",
                     "Degenerate synchronous gossip (N=400): zero latency, "
                     "zero loss, lockstep rounds, fully mixed — the "
                     "configuration whose adoption law matches "
                     "finite_dynamics (statistical test tier)");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 400;
    spec.environment.etas = {0.85, 0.35};
    spec.protocol.base_latency = 0.0;
    spec.protocol.lockstep = true;
    spec.protocol.max_retries = 16;
    spec.probes = {"regret", "final_histogram", "commit_latency"};
    catalog.push_back(std::move(spec));
  }
  {
    // The nemesis flagship: cut the population in half for rounds 10..25,
    // let the sides diverge, heal, and measure re-convergence.  Times are
    // rounds; the window sits inside the 40-round golden run so the
    // determinism tier exercises the full partition/heal cycle.
    auto spec = base("gossip_partition_heal",
                     "Scheduled partition nemesis (N=200): nodes 0..99 are "
                     "cut off during rounds 10..25, then healed; the "
                     "partition-divergence probe measures per-side "
                     "disagreement and post-heal re-convergence");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 200;
    spec.environment.etas = {0.85, 0.35};
    fault_action_spec cut;
    cut.kind = fault_action_spec::action_kind::partition;
    cut.at = 10.0;
    cut.until = 25.0;
    for (std::uint64_t id = 0; id < 100; ++id) cut.targets.push_back(id);
    spec.faults.actions.push_back(std::move(cut));
    spec.probes = {"regret", "adoption", "partition_divergence(eps=0.1)"};
    catalog.push_back(std::move(spec));
  }
  {
    // Repeated mass-failure nemesis: two crash waves with full restarts in
    // between — the "rolling reboot" robustness story.  Fractional waves
    // draw from the dedicated fault stream, so the trajectory is pinned.
    auto spec = base("gossip_crash_waves",
                     "Crash-wave nemesis (N=300): 30% of nodes crash at "
                     "rounds 8 and 24, all crashed nodes restart at rounds "
                     "16 and 32; adoption tracks the committed fraction "
                     "through both waves");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 300;
    spec.environment.etas = {0.85, 0.35};
    for (const double at : {8.0, 24.0}) {
      fault_action_spec wave;
      wave.kind = fault_action_spec::action_kind::crash_wave;
      wave.at = at;
      wave.fraction = 0.3;
      spec.faults.actions.push_back(std::move(wave));
    }
    for (const double at : {16.0, 32.0}) {
      fault_action_spec wave;
      wave.kind = fault_action_spec::action_kind::restart_wave;
      wave.at = at;
      spec.faults.actions.push_back(std::move(wave));
    }
    spec.probes = {"regret", "adoption", "commit_latency"};
    catalog.push_back(std::move(spec));
  }
  {
    // Link-quality nemesis: during rounds 12..30 every link that crosses
    // the boundary of nodes 0..124 turns slow and lossy (the WAN-brownout
    // story), then the override lifts.
    auto spec = base("gossip_degraded_links",
                     "Degraded-links nemesis (N=250): cross links into "
                     "nodes 0..124 run at 4x latency and 50% loss during "
                     "rounds 12..30, then recover; message-cost accounting "
                     "rides along");
    spec.params = core::theorem_params(2, 0.65);
    spec.engine = engine_kind::protocol;
    spec.num_agents = 250;
    spec.environment.etas = {0.85, 0.35};
    fault_action_spec brownout;
    brownout.kind = fault_action_spec::action_kind::degrade;
    brownout.at = 12.0;
    brownout.until = 30.0;
    brownout.link_class = fault_action_spec::link_class_kind::cross;
    for (std::uint64_t id = 0; id < 125; ++id) brownout.targets.push_back(id);
    brownout.base_latency = 0.2;
    brownout.drop_probability = 0.5;
    spec.faults.actions.push_back(std::move(brownout));
    spec.probes = {"regret", "message_cost", "adoption"};
    catalog.push_back(std::move(spec));
  }
  {
    // Heterogeneity as a three-way rule mixture (exact grouped engine).
    auto spec = base("mixture-discernment",
                     "Heterogeneous mixture: 300 discerning (0.05/0.95), 400 "
                     "paper-rule (0.35/0.65), 300 indiscriminate (0.5/0.5) "
                     "agents via the exact grouped engine");
    spec.params = core::theorem_params(4, 0.65);
    spec.engine = engine_kind::grouped;
    spec.num_agents = 1000;
    spec.environment.etas = {0.85, 0.45, 0.40, 0.35};
    spec.groups = {{300, {0.05, 0.95}}, {400, {0.35, 0.65}}, {300, {0.5, 0.5}}};
    catalog.push_back(std::move(spec));
  }

  return catalog;
}

const std::vector<scenario_spec>& catalog() {
  static const std::vector<scenario_spec> scenarios = build_catalog();
  return scenarios;
}

}  // namespace

std::span<const scenario_spec> all_scenarios() { return catalog(); }

const scenario_spec* find_scenario(std::string_view name) noexcept {
  for (const auto& spec : catalog()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

scenario_spec get_scenario(std::string_view name) {
  if (const scenario_spec* spec = find_scenario(name)) return *spec;
  std::string message{"unknown scenario '"};
  message += name;
  message += "'; known:";
  for (const auto& spec : catalog()) {
    message += ' ';
    message += spec.name;
  }
  throw std::invalid_argument{message};
}

}  // namespace sgl::scenario
