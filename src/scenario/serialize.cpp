#include "scenario/serialize.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "support/json.h"  // json_number / json_escape
#include "support/text.h"  // trim_ascii / parse_full_double / closest_name

namespace sgl::scenario {
namespace {

// --- lexical helpers --------------------------------------------------------

[[noreturn]] void fail(std::string_view key, const std::string& what) {
  throw std::invalid_argument{"scenario key '" + std::string{key} + "': " + what};
}

double parse_double(std::string_view key, std::string_view text) {
  const std::optional<double> parsed = parse_full_double(text);
  if (!parsed) fail(key, "bad number '" + std::string{trim_ascii(text)} + "'");
  return *parsed;
}

/// Unsigned integer, accepting both exact decimal ("100000") and numeric
/// notation that denotes an integer ("1e5").
std::uint64_t parse_unsigned(std::string_view key, std::string_view text) {
  const std::string_view t = trim_ascii(text);
  std::uint64_t exact = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), exact);
  if (ec == std::errc{} && ptr == t.data() + t.size()) return exact;
  const double parsed = parse_double(key, t);
  if (!(parsed >= 0.0) || parsed != std::floor(parsed) || parsed > 9.007199254740992e15) {
    fail(key, "expected a non-negative integer, got '" + std::string{t} + "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

/// A string value: JSON-quoted ("...") or a bare token.
std::string parse_string(std::string_view key, std::string_view text) {
  const std::string_view t = trim_ascii(text);
  if (t.empty() || t.front() != '"') return std::string{t};
  std::string out;
  out.reserve(t.size());
  for (std::size_t i = 1; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '"') {
      if (i + 1 != t.size()) fail(key, "text after the closing quote");
      return out;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i == t.size()) fail(key, "dangling escape");
    const char escaped = t[i];
    switch (escaped) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        // \uXXXX (BMP only, as emitted by json_escape and by JSON encoders
        // with ensure_ascii), decoded to UTF-8.
        if (i + 4 >= t.size()) fail(key, "truncated \\u escape");
        unsigned code = 0;
        for (int digit = 0; digit < 4; ++digit) {
          const char h = t[++i];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            fail(key, "bad \\u escape");
          }
        }
        if (code >= 0xD800 && code < 0xE000) {
          fail(key, "surrogate \\u escapes are not supported");
        }
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0U | (code >> 6));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        } else {
          out += static_cast<char>(0xE0U | (code >> 12));
          out += static_cast<char>(0x80U | ((code >> 6) & 0x3FU));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        }
        break;
      }
      default: fail(key, std::string{"unsupported escape '\\"} + escaped + "'");
    }
  }
  fail(key, "unterminated string");
}

/// Splits "[a, b, c]" into trimmed element texts ({} for "[]").
std::vector<std::string_view> parse_array_elements(std::string_view key,
                                                   std::string_view text) {
  const std::string_view t = trim_ascii(text);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    fail(key, "expected an array like [a, b, c], got '" + std::string{t} + "'");
  }
  const std::string_view body = trim_ascii(t.substr(1, t.size() - 2));
  std::vector<std::string_view> out;
  if (body.empty()) return out;
  bool in_quotes = false;
  bool escaped = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size()) {
      if (escaped) {
        escaped = false;
        continue;
      }
      if (in_quotes && body[i] == '\\') {
        escaped = true;
        continue;
      }
      if (body[i] == '"') in_quotes = !in_quotes;
    }
    if (i == body.size() || (body[i] == ',' && !in_quotes)) {
      out.push_back(trim_ascii(body.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<double> parse_double_array(std::string_view key, std::string_view text) {
  std::vector<double> out;
  for (const std::string_view element : parse_array_elements(key, text)) {
    out.push_back(parse_double(key, element));
  }
  return out;
}

std::vector<std::string> parse_string_array(std::string_view key, std::string_view text) {
  std::vector<std::string> out;
  for (const std::string_view element : parse_array_elements(key, text)) {
    out.push_back(parse_string(key, element));
  }
  return out;
}

std::vector<std::uint64_t> parse_unsigned_array(std::string_view key,
                                                std::string_view text) {
  std::vector<std::uint64_t> out;
  for (const std::string_view element : parse_array_elements(key, text)) {
    out.push_back(parse_unsigned(key, element));
  }
  return out;
}

std::string quote(std::string_view s) { return '"' + json_escape(s) + '"'; }

/// A boolean value: bare or quoted `true` / `false`.
bool parse_bool(std::string_view key, std::string_view text) {
  const std::string parsed = parse_string(key, text);
  if (parsed == "true") return true;
  if (parsed == "false") return false;
  fail(key, "expected true or false, got '" + parsed + "'");
}

std::string format_double_array(std::span<const double> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(values[i]);
  }
  out += ']';
  return out;
}

std::string format_string_array(std::span<const std::string> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += quote(values[i]);
  }
  out += ']';
  return out;
}

std::string format_unsigned_array(std::span<const std::uint64_t> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

// --- enum names -------------------------------------------------------------

template <typename Enum, std::size_t N>
std::string_view enum_name(std::string_view key, Enum value,
                           const std::array<std::pair<std::string_view, Enum>, N>& names) {
  for (const auto& [name, e] : names) {
    if (e == value) return name;
  }
  fail(key, "unmapped enum value");  // unreachable for in-range enums
}

template <typename Enum, std::size_t N>
Enum enum_value(std::string_view key, std::string_view text,
                const std::array<std::pair<std::string_view, Enum>, N>& names) {
  const std::string parsed = parse_string(key, text);
  for (const auto& [name, e] : names) {
    if (name == parsed) return e;
  }
  std::string message = "unknown value '" + parsed + "'; known:";
  for (const auto& [name, e] : names) {
    message += ' ';
    message += name;
  }
  fail(key, message);
}

constexpr std::array<std::pair<std::string_view, engine_kind>, 6> k_engine_names{{
    {"auto", engine_kind::auto_select},
    {"infinite", engine_kind::infinite},
    {"aggregate", engine_kind::aggregate},
    {"agent_based", engine_kind::agent_based},
    {"grouped", engine_kind::grouped},
    {"protocol", engine_kind::protocol},
}};

constexpr std::array<std::pair<std::string_view, core::kernel_kind>, 3> k_kernel_names{{
    {"auto", core::kernel_kind::auto_select},
    {"scalar", core::kernel_kind::scalar},
    {"simd", core::kernel_kind::simd},
}};

constexpr std::array<std::pair<std::string_view, topology_spec::family_kind>, 10>
    k_topology_names{{
        {"none", topology_spec::family_kind::none},
        {"complete", topology_spec::family_kind::complete},
        {"ring", topology_spec::family_kind::ring},
        {"grid", topology_spec::family_kind::grid},
        {"torus", topology_spec::family_kind::torus},
        {"star", topology_spec::family_kind::star},
        {"erdos_renyi", topology_spec::family_kind::erdos_renyi},
        {"watts_strogatz", topology_spec::family_kind::watts_strogatz},
        {"barabasi_albert", topology_spec::family_kind::barabasi_albert},
        {"two_cliques", topology_spec::family_kind::two_cliques},
    }};

constexpr std::array<std::pair<std::string_view, environment_spec::family_kind>, 4>
    k_environment_names{{
        {"bernoulli", environment_spec::family_kind::bernoulli},
        {"exclusive", environment_spec::family_kind::exclusive},
        {"switching", environment_spec::family_kind::switching},
        {"drifting", environment_spec::family_kind::drifting},
    }};

constexpr std::array<std::pair<std::string_view, fault_action_spec::action_kind>, 4>
    k_fault_kind_names{{
        {"partition", fault_action_spec::action_kind::partition},
        {"crash_wave", fault_action_spec::action_kind::crash_wave},
        {"restart_wave", fault_action_spec::action_kind::restart_wave},
        {"degrade", fault_action_spec::action_kind::degrade},
    }};

constexpr std::array<std::pair<std::string_view, fault_action_spec::link_class_kind>, 4>
    k_link_class_names{{
        {"all", fault_action_spec::link_class_kind::all},
        {"intra", fault_action_spec::link_class_kind::intra},
        {"cross", fault_action_spec::link_class_kind::cross},
        {"nodes", fault_action_spec::link_class_kind::nodes},
    }};

// --- the key table ----------------------------------------------------------

/// Non-indexed keys, in canonical serialization order.  `groups.N.size/
/// alpha/beta`, `agent_rules.N.alpha/beta`, and `faults.N.*` are the
/// indexed families.  The `protocol.*` and `faults.*` families are
/// serialized only for protocol-engine specs and rejected for every other
/// engine (engine-family gating below).
constexpr std::array<std::string_view, 36> k_keys{
    "name",
    "description",
    "engine",
    "num_agents",
    "engine_threads",
    "kernel",
    "params.num_options",
    "params.mu",
    "params.beta",
    "params.alpha",
    "environment.family",
    "environment.etas",
    "environment.end_etas",
    "environment.period",
    "environment.horizon",
    "topology.family",
    "topology.rows",
    "topology.cols",
    "topology.edge_probability",
    "topology.degree",
    "topology.rewire_probability",
    "topology.bridges",
    "topology.seed",
    "protocol.round_interval",
    "protocol.base_latency",
    "protocol.jitter_mean",
    "protocol.drop_probability",
    "protocol.max_retries",
    "protocol.crash_rate",
    "protocol.restart_rate",
    "protocol.sticky",
    "protocol.lockstep",
    "faults.record",
    "faults.record_capacity",
    "start",
    "probes",
};

[[noreturn]] void unknown_key(std::string_view key) {
  std::string message{"unknown scenario key '"};
  message += key;
  message += "'";
  std::vector<std::string_view> candidates{k_keys.begin(), k_keys.end()};
  candidates.insert(candidates.end(),
                    {"groups.0.size", "groups.0.alpha", "groups.0.beta",
                     "agent_rules.0.alpha", "agent_rules.0.beta",
                     "faults.0.kind", "faults.0.at", "faults.0.until",
                     "faults.0.targets", "faults.0.fraction",
                     "faults.0.link_class", "faults.0.base_latency",
                     "faults.0.jitter_mean", "faults.0.drop_probability"});
  const std::string suggestion = closest_name(key, candidates);
  if (!suggestion.empty()) {
    message += " (did you mean '";
    message += suggestion;
    message += "'?)";
  }
  throw std::invalid_argument{message};
}

/// Rejects a key whose family the spec's chosen engine does not read.  A
/// plausible-but-irrelevant key silently accepted would make the run claim
/// a configuration it never used; rejecting here keeps `--set` and spec
/// files honest.  Keys that can flip auto-selection (groups, agent_rules,
/// topology) stay legal while the engine is `auto`; `protocol.*` keys are
/// never auto-selected, so they require engine = "protocol" to have been
/// set first (canonical serialization emits `engine` before every family
/// key, so round trips are unaffected).
[[noreturn]] void family_mismatch(std::string_view key, std::string_view readers,
                                  engine_kind actual) {
  std::string message{"scenario key '"};
  message += key;
  message += "' is read only by the ";
  message += readers;
  message += " engine, but this spec's engine is '";
  message += enum_name("engine", actual, k_engine_names);
  message += "' — set a matching engine before it, or drop the key";
  throw std::invalid_argument{message};
}

/// Parses "<family>.<index>.<field>" tails; returns false when `key` does
/// not start with `family.`.
bool split_indexed(std::string_view key, std::string_view family, std::size_t& index,
                   std::string_view& field) {
  if (!key.starts_with(family) || key.size() <= family.size() ||
      key[family.size()] != '.') {
    return false;
  }
  const std::string_view tail = key.substr(family.size() + 1);
  const std::size_t dot = tail.find('.');
  if (dot == std::string_view::npos) unknown_key(key);
  const std::string_view index_text = tail.substr(0, dot);
  const auto [ptr, ec] =
      std::from_chars(index_text.data(), index_text.data() + index_text.size(), index);
  if (ec != std::errc{} || ptr != index_text.data() + index_text.size()) unknown_key(key);
  field = tail.substr(dot + 1);
  return true;
}

/// Fetches entry `index` of `entries`, appending one default entry when the
/// key addresses one past the end (how the text format builds lists).
template <typename T>
T& addressed_entry(std::string_view key, std::vector<T>& entries, std::size_t index) {
  if (index == entries.size()) entries.emplace_back();
  if (index >= entries.size()) {
    fail(key, "index " + std::to_string(index) + " skips entries (list has " +
                  std::to_string(entries.size()) + ")");
  }
  return entries[index];
}

}  // namespace

void apply_override(scenario_spec& spec, std::string_view key, std::string_view value) {
  const std::string_view k = trim_ascii(key);
  const std::string_view v = trim_ascii(value);

  if (k == "name") {
    spec.name = parse_string(k, v);
  } else if (k == "description") {
    spec.description = parse_string(k, v);
  } else if (k == "engine") {
    spec.engine = enum_value(k, v, k_engine_names);
  } else if (k == "num_agents") {
    spec.num_agents = parse_unsigned(k, v);
  } else if (k == "engine_threads") {
    spec.engine_threads = static_cast<unsigned>(parse_unsigned(k, v));
  } else if (k == "kernel") {
    spec.engine_kernel = enum_value(k, v, k_kernel_names);
  } else if (k == "params.num_options") {
    spec.params.num_options = static_cast<std::size_t>(parse_unsigned(k, v));
  } else if (k == "params.mu") {
    spec.params.mu = parse_double(k, v);
  } else if (k == "params.beta") {
    spec.params.beta = parse_double(k, v);
  } else if (k == "params.alpha") {
    spec.params.alpha = parse_double(k, v);
  } else if (k == "environment.family") {
    spec.environment.family = enum_value(k, v, k_environment_names);
  } else if (k == "environment.etas") {
    spec.environment.etas = parse_double_array(k, v);
  } else if (k == "environment.end_etas") {
    spec.environment.end_etas = parse_double_array(k, v);
  } else if (k == "environment.period") {
    spec.environment.period = parse_unsigned(k, v);
  } else if (k == "environment.horizon") {
    spec.environment.horizon = parse_unsigned(k, v);
  } else if (k == "topology.family") {
    const auto family = enum_value(k, v, k_topology_names);
    if (family != topology_spec::family_kind::none &&
        spec.engine != engine_kind::auto_select &&
        spec.engine != engine_kind::agent_based &&
        spec.engine != engine_kind::protocol) {
      family_mismatch(k, "agent_based or protocol", spec.engine);
    }
    spec.topology.family = family;
  } else if (k == "topology.rows") {
    spec.topology.rows = static_cast<std::size_t>(parse_unsigned(k, v));
  } else if (k == "topology.cols") {
    spec.topology.cols = static_cast<std::size_t>(parse_unsigned(k, v));
  } else if (k == "topology.edge_probability") {
    spec.topology.edge_probability = parse_double(k, v);
  } else if (k == "topology.degree") {
    spec.topology.degree = static_cast<std::size_t>(parse_unsigned(k, v));
  } else if (k == "topology.rewire_probability") {
    spec.topology.rewire_probability = parse_double(k, v);
  } else if (k == "topology.bridges") {
    spec.topology.bridges = static_cast<std::size_t>(parse_unsigned(k, v));
  } else if (k == "topology.seed") {
    spec.topology.seed = parse_unsigned(k, v);
  } else if (k.starts_with("protocol.")) {
    const std::string_view field = k.substr(9);
    const bool known = field == "round_interval" || field == "base_latency" ||
                       field == "jitter_mean" || field == "drop_probability" ||
                       field == "max_retries" || field == "crash_rate" ||
                       field == "restart_rate" || field == "sticky" ||
                       field == "lockstep";
    if (!known) unknown_key(k);
    if (spec.engine != engine_kind::protocol) family_mismatch(k, "protocol", spec.engine);
    protocol_spec& p = spec.protocol;
    if (field == "round_interval") {
      p.round_interval = parse_double(k, v);
    } else if (field == "base_latency") {
      p.base_latency = parse_double(k, v);
    } else if (field == "jitter_mean") {
      p.jitter_mean = parse_double(k, v);
    } else if (field == "drop_probability") {
      p.drop_probability = parse_double(k, v);
    } else if (field == "max_retries") {
      p.max_retries = parse_unsigned(k, v);
    } else if (field == "crash_rate") {
      p.crash_rate = parse_double(k, v);
    } else if (field == "restart_rate") {
      p.restart_rate = parse_double(k, v);
    } else if (field == "sticky") {
      p.sticky = parse_bool(k, v);
    } else if (field == "lockstep") {
      p.lockstep = parse_bool(k, v);
    } else {
      // Unreachable while the chain matches the `known` list above; a new
      // field added only to that list must fail loudly, not silently land
      // in the last branch.
      unknown_key(k);
    }
  } else if (k == "faults.record") {
    if (spec.engine != engine_kind::protocol) family_mismatch(k, "protocol", spec.engine);
    spec.faults.record = parse_bool(k, v);
  } else if (k == "faults.record_capacity") {
    if (spec.engine != engine_kind::protocol) family_mismatch(k, "protocol", spec.engine);
    spec.faults.record_capacity = parse_unsigned(k, v);
  } else if (k == "start") {
    std::vector<double> start = parse_double_array(k, v);
    if (!start.empty() && spec.engine != engine_kind::auto_select &&
        spec.engine != engine_kind::infinite) {
      family_mismatch(k, "infinite", spec.engine);
    }
    spec.start = std::move(start);
  } else if (k == "probes") {
    spec.probes = parse_string_array(k, v);
  } else {
    std::size_t index = 0;
    std::string_view field;
    if (split_indexed(k, "faults", index, field)) {
      const bool known = field == "kind" || field == "at" || field == "until" ||
                         field == "targets" || field == "fraction" ||
                         field == "link_class" || field == "base_latency" ||
                         field == "jitter_mean" || field == "drop_probability";
      if (!known) unknown_key(k);
      if (spec.engine != engine_kind::protocol) family_mismatch(k, "protocol", spec.engine);
      fault_action_spec& action = addressed_entry(k, spec.faults.actions, index);
      if (field == "kind") {
        action.kind = enum_value(k, v, k_fault_kind_names);
      } else if (field == "at") {
        action.at = parse_double(k, v);
      } else if (field == "until") {
        action.until = parse_double(k, v);
      } else if (field == "targets") {
        action.targets = parse_unsigned_array(k, v);
      } else if (field == "fraction") {
        action.fraction = parse_double(k, v);
      } else if (field == "link_class") {
        action.link_class = enum_value(k, v, k_link_class_names);
      } else if (field == "base_latency") {
        action.base_latency = parse_double(k, v);
      } else if (field == "jitter_mean") {
        action.jitter_mean = parse_double(k, v);
      } else if (field == "drop_probability") {
        action.drop_probability = parse_double(k, v);
      } else {
        // Unreachable while the chain matches `known`; a field added only
        // there must fail loudly.
        unknown_key(k);
      }
    } else if (split_indexed(k, "groups", index, field)) {
      if (spec.engine != engine_kind::auto_select &&
          spec.engine != engine_kind::grouped) {
        family_mismatch(k, "grouped", spec.engine);
      }
      core::rule_group& group = addressed_entry(k, spec.groups, index);
      if (field == "size") {
        group.size = parse_unsigned(k, v);
      } else if (field == "alpha") {
        group.rule.alpha = parse_double(k, v);
      } else if (field == "beta") {
        group.rule.beta = parse_double(k, v);
      } else {
        unknown_key(k);
      }
    } else if (split_indexed(k, "agent_rules", index, field)) {
      if (spec.engine != engine_kind::auto_select &&
          spec.engine != engine_kind::agent_based) {
        family_mismatch(k, "agent_based", spec.engine);
      }
      core::adoption_rule& rule = addressed_entry(k, spec.agent_rules, index);
      if (field == "alpha") {
        rule.alpha = parse_double(k, v);
      } else if (field == "beta") {
        rule.beta = parse_double(k, v);
      } else {
        unknown_key(k);
      }
    } else {
      unknown_key(k);
    }
  }
}

void apply_override(scenario_spec& spec, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos) {
    throw std::invalid_argument{"override '" + std::string{assignment} +
                                "' must be key=value"};
  }
  apply_override(spec, assignment.substr(0, eq), assignment.substr(eq + 1));
}

std::vector<std::pair<std::string, std::string>> scenario_fields(
    const scenario_spec& spec) {
  std::vector<std::pair<std::string, std::string>> fields;
  const auto add = [&fields](std::string_view key, std::string value) {
    fields.emplace_back(std::string{key}, std::move(value));
  };
  add("name", quote(spec.name));
  add("description", quote(spec.description));
  add("engine", quote(enum_name("engine", spec.engine, k_engine_names)));
  add("num_agents", std::to_string(spec.num_agents));
  add("engine_threads", std::to_string(spec.engine_threads));
  add("kernel", quote(enum_name("kernel", spec.engine_kernel, k_kernel_names)));
  add("params.num_options", std::to_string(spec.params.num_options));
  add("params.mu", json_number(spec.params.mu));
  add("params.beta", json_number(spec.params.beta));
  add("params.alpha", json_number(spec.params.alpha));
  add("environment.family",
      quote(enum_name("environment.family", spec.environment.family, k_environment_names)));
  add("environment.etas", format_double_array(spec.environment.etas));
  add("environment.end_etas", format_double_array(spec.environment.end_etas));
  add("environment.period", std::to_string(spec.environment.period));
  add("environment.horizon", std::to_string(spec.environment.horizon));
  add("topology.family",
      quote(enum_name("topology.family", spec.topology.family, k_topology_names)));
  add("topology.rows", std::to_string(spec.topology.rows));
  add("topology.cols", std::to_string(spec.topology.cols));
  add("topology.edge_probability", json_number(spec.topology.edge_probability));
  add("topology.degree", std::to_string(spec.topology.degree));
  add("topology.rewire_probability", json_number(spec.topology.rewire_probability));
  add("topology.bridges", std::to_string(spec.topology.bridges));
  add("topology.seed", std::to_string(spec.topology.seed));
  if (spec.engine == engine_kind::protocol) {
    // Only the protocol engine reads these keys, and only it may set them
    // (apply_override's engine-family gating); emitting them for other
    // engines would break the parse(serialize(s)) round trip.
    add("protocol.round_interval", json_number(spec.protocol.round_interval));
    add("protocol.base_latency", json_number(spec.protocol.base_latency));
    add("protocol.jitter_mean", json_number(spec.protocol.jitter_mean));
    add("protocol.drop_probability", json_number(spec.protocol.drop_probability));
    add("protocol.max_retries", std::to_string(spec.protocol.max_retries));
    add("protocol.crash_rate", json_number(spec.protocol.crash_rate));
    add("protocol.restart_rate", json_number(spec.protocol.restart_rate));
    add("protocol.sticky", spec.protocol.sticky ? "true" : "false");
    add("protocol.lockstep", spec.protocol.lockstep ? "true" : "false");
    add("faults.record", spec.faults.record ? "true" : "false");
    add("faults.record_capacity", std::to_string(spec.faults.record_capacity));
    for (std::size_t i = 0; i < spec.faults.actions.size(); ++i) {
      const fault_action_spec& action = spec.faults.actions[i];
      const std::string prefix = "faults." + std::to_string(i) + ".";
      add(prefix + "kind",
          quote(enum_name(prefix + "kind", action.kind, k_fault_kind_names)));
      add(prefix + "at", json_number(action.at));
      add(prefix + "until", json_number(action.until));
      add(prefix + "targets", format_unsigned_array(action.targets));
      add(prefix + "fraction", json_number(action.fraction));
      add(prefix + "link_class",
          quote(enum_name(prefix + "link_class", action.link_class, k_link_class_names)));
      add(prefix + "base_latency", json_number(action.base_latency));
      add(prefix + "jitter_mean", json_number(action.jitter_mean));
      add(prefix + "drop_probability", json_number(action.drop_probability));
    }
  }
  add("start", format_double_array(spec.start));
  add("probes", format_string_array(spec.probes));
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const std::string prefix = "groups." + std::to_string(g) + ".";
    add(prefix + "size", std::to_string(spec.groups[g].size));
    add(prefix + "alpha", json_number(spec.groups[g].rule.alpha));
    add(prefix + "beta", json_number(spec.groups[g].rule.beta));
  }
  for (std::size_t i = 0; i < spec.agent_rules.size(); ++i) {
    const std::string prefix = "agent_rules." + std::to_string(i) + ".";
    add(prefix + "alpha", json_number(spec.agent_rules[i].alpha));
    add(prefix + "beta", json_number(spec.agent_rules[i].beta));
  }
  return fields;
}

std::string serialize_scenario(const scenario_spec& spec) {
  std::string out = "# sociolearn scenario v1\n";
  for (const auto& [key, value] : scenario_fields(spec)) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

scenario_spec parse_scenario(std::string_view text) {
  scenario_spec spec;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t newline = text.find('\n', start);
    if (newline == std::string_view::npos) newline = text.size();
    std::string_view line = text.substr(start, newline - start);
    start = newline + 1;
    ++line_number;

    // Strip a trailing comment ('#' outside quotes).
    bool in_quotes = false;
    bool escaped = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (escaped) {
        escaped = false;
        continue;
      }
      if (in_quotes && line[i] == '\\') {
        escaped = true;
        continue;
      }
      if (line[i] == '"') in_quotes = !in_quotes;
      if (line[i] == '#' && !in_quotes) {
        line = line.substr(0, i);
        break;
      }
    }
    line = trim_ascii(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument{"line " + std::to_string(line_number) +
                                  ": expected 'key = value', got '" + std::string{line} +
                                  "'"};
    }
    try {
      apply_override(spec, line.substr(0, eq), line.substr(eq + 1));
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument{"line " + std::to_string(line_number) + ": " +
                                  error.what()};
    }
  }
  return spec;
}

sweep_axis parse_sweep_axis(std::string_view text) {
  const std::string_view t = trim_ascii(text);
  const std::size_t eq = t.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::invalid_argument{"sweep axis '" + std::string{t} +
                                "' must be key=lo:hi:step or key=v1,v2,..."};
  }
  sweep_axis axis;
  axis.key = std::string{trim_ascii(t.substr(0, eq))};
  const std::string_view values = trim_ascii(t.substr(eq + 1));
  if (values.empty()) {
    throw std::invalid_argument{"sweep axis '" + std::string{t} + "' has no values"};
  }

  if (values.find(':') != std::string_view::npos) {
    // Inclusive numeric range lo:hi:step.
    std::array<double, 3> parts{};
    std::size_t part = 0;
    std::size_t from = 0;
    for (std::size_t i = 0; i <= values.size(); ++i) {
      if (i == values.size() || values[i] == ':') {
        if (part >= 3) {
          throw std::invalid_argument{"sweep range '" + std::string{values} +
                                      "' must be lo:hi:step"};
        }
        parts[part++] = parse_double(axis.key, values.substr(from, i - from));
        from = i + 1;
      }
    }
    if (part != 3) {
      throw std::invalid_argument{"sweep range '" + std::string{values} +
                                  "' must be lo:hi:step"};
    }
    const auto [lo, hi, step] = parts;
    // Non-finite endpoints must be rejected up front: NaN slips past both
    // relational guards below (every comparison is false), so the point
    // count itself goes NaN and the size_t cast is UB — in practice a
    // near-2^63 count that loops forever.  inf - inf is the same trap.
    if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(step)) {
      throw std::invalid_argument{"sweep range '" + std::string{values} +
                                  "': lo, hi and step must be finite"};
    }
    if (!(step > 0.0)) {
      throw std::invalid_argument{"sweep range '" + std::string{values} +
                                  "': step must be > 0"};
    }
    if (lo > hi) {
      throw std::invalid_argument{"sweep range '" + std::string{values} +
                                  "': lo must be <= hi"};
    }
    const double count_d = std::floor((hi - lo) / step + 1e-9) + 1.0;
    if (count_d > 10000.0) {
      throw std::invalid_argument{"sweep range '" + std::string{values} +
                                  "' expands to more than 10000 points"};
    }
    const auto count = static_cast<std::size_t>(count_d);
    char buffer[40];
    for (std::size_t i = 0; i < count; ++i) {
      // 12 significant digits keep grid points on the intended decimals
      // (0.55 + 2*0.05 prints as 0.65, not 0.65000000000000013) while
      // staying deterministic.
      std::snprintf(buffer, sizeof buffer, "%.12g", lo + static_cast<double>(i) * step);
      axis.values.emplace_back(buffer);
    }
  } else {
    std::size_t from = 0;
    for (std::size_t i = 0; i <= values.size(); ++i) {
      if (i == values.size() || values[i] == ',') {
        const std::string_view item = trim_ascii(values.substr(from, i - from));
        if (item.empty()) {
          throw std::invalid_argument{"sweep list '" + std::string{values} +
                                      "' has an empty value"};
        }
        axis.values.emplace_back(item);
        from = i + 1;
      }
    }
  }
  return axis;
}

std::vector<std::vector<std::pair<std::string, std::string>>> expand_sweep(
    std::span<const sweep_axis> axes) {
  std::size_t total = 1;
  for (const sweep_axis& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument{"sweep axis '" + axis.key + "' has no values"};
    }
    if (total > 100000 / axis.values.size()) {
      throw std::invalid_argument{"sweep grid exceeds 100000 runs"};
    }
    total *= axis.values.size();
  }
  std::vector<std::vector<std::pair<std::string, std::string>>> grid;
  grid.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    std::vector<std::pair<std::string, std::string>> point;
    point.reserve(axes.size());
    // Mixed-radix decomposition; the last axis varies fastest.
    std::size_t remainder = index;
    std::size_t radix = total;
    for (const sweep_axis& axis : axes) {
      radix /= axis.values.size();
      const std::size_t digit = remainder / radix;
      remainder %= radix;
      point.emplace_back(axis.key, axis.values[digit]);
    }
    grid.push_back(std::move(point));
  }
  return grid;
}

}  // namespace sgl::scenario
