#pragma once

/// \file sweep.h
/// The sweep scheduler: one flattened work queue for a whole parameter
/// grid.
///
/// The naive way to run a sweep — the CLI's historical loop — executes one
/// grid point at a time, paying a full harness spin-up per point (engine/
/// environment construction, topology build, a parallel-reduce barrier)
/// and idling the tail of the machine whenever a point has fewer
/// replications than workers.  run_sweep flattens the grid into
/// (point × replication-shard) work items scheduled together over the
/// persistent worker pool (support/parallel.h): every worker stays busy
/// until the whole grid drains, engines are reused through each point's
/// context pool (core/experiment.h), and points that share a topology key
/// share one built graph (scenario.h, shared_topology).
///
/// Determinism is inherited, not re-proven: each point keeps the exact
/// shard decomposition, per-replication RNG streams
/// (rng::from_stream(seed, 2r[+1])) and fixed-order shard merge that
/// run_with_probes uses, so every point's merged probes are bit-identical
/// to running that point alone — for any thread count, any interleaving,
/// and with engine reuse on or off (tested in
/// tests/harness_determinism_test.cpp).

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/probe.h"
#include "scenario/scenario.h"

namespace sgl::scenario {

/// One grid point's outcome.
struct sweep_point_result {
  scenario_spec spec;  ///< the base spec with this point's overrides applied
  std::vector<std::pair<std::string, std::string>> assignments;  ///< the overrides
  core::probe_list probes;  ///< merged probes, in probe-spec order
  /// Wall-clock seconds this point spent in flight (first shard started to
  /// last shard finished).  Points overlap under the flattened scheduler,
  /// so these can sum to more than the sweep's elapsed time.
  double seconds = 0.0;
};

/// Incremental delivery and cancellation for the flattened scheduler —
/// what a long-lived caller (the sociolearnd job queue) needs that the
/// batch entry point below cannot give it.
struct sweep_stream_hooks {
  /// Called once per *completed* grid point, with its grid index and
  /// merged result, as soon as the point's last shard finishes.  Invoked
  /// from worker threads but serialized by an internal mutex; points
  /// complete in scheduler order, not grid order.  Must not throw.
  std::function<void(std::size_t index, sweep_point_result&&)> on_point;

  /// Polled (acquire) before each (point × shard) work item starts; once
  /// true, every not-yet-started item is skipped.  Shards already running
  /// finish normally, so a point either completes exactly as it would
  /// have uncancelled (and reaches on_point) or never reaches on_point at
  /// all — there are no partial merges.  nullptr = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

/// Runs every grid point (a list of key=value override assignments, as
/// produced by expand_sweep; an empty grid means one point with no
/// overrides) of `base` under one flattened schedule.  `probe_specs`
/// chooses the measurements for every point; when empty, each point falls
/// back to its spec's own `probes` list, and failing that to {"regret"}.
/// All points are overridden and validated (validate_spec + factory
/// construction) before any replication runs, so errors surface before
/// work — and before any caller output — starts.  Returns the results in
/// grid order.  Throws as run_with_probes / apply_override / validate_spec.
[[nodiscard]] std::vector<sweep_point_result> run_sweep(
    const scenario_spec& base,
    std::span<const std::vector<std::pair<std::string, std::string>>> grid,
    const core::run_config& config, std::span<const std::string> probe_specs = {});

/// The streaming/cancellable core run_sweep wraps: identical validation,
/// scheduling, per-point shard decomposition and shard-order merge (so
/// per-point results are bit-identical to run_sweep's), but results flow
/// through hooks.on_point as points complete instead of being collected.
/// Returns the number of points that completed (== the grid size unless
/// hooks.cancel fired).  Throws as run_sweep.
std::size_t run_sweep_streaming(
    const scenario_spec& base,
    std::span<const std::vector<std::pair<std::string, std::string>>> grid,
    const core::run_config& config, std::span<const std::string> probe_specs,
    const sweep_stream_hooks& hooks);

}  // namespace sgl::scenario
