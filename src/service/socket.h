#pragma once

/// \file socket.h
/// Minimal Unix-domain stream plumbing for sociolearnd and its client.
///
/// The wire is newline-delimited: one JSON object per line in both
/// directions (DESIGN.md "Service mode").  This file owns only the
/// transport — fds, listen/accept/connect, full writes, and splitting the
/// byte stream back into lines; the protocol lives in service.h.
///
/// Everything here is POSIX-only, like the daemon itself; the simulation
/// library never includes this header.
///
/// Fail-point sites (support/failpoint.h), for deterministic exercise of
/// the paths a real network produces only probabilistically:
///
///   socket.accept       accept() reports a transient failure (EINTR-like)
///   socket.connect      connect() fails (daemon briefly unreachable)
///   socket.read_eintr   one read() is restarted as if interrupted
///   socket.read_short   one read() returns at most `arg` bytes (default 1)
///   socket.read_fail    read() fails hard (ECONNRESET-shaped)
///   socket.write_short  one write() consumes at most `arg` bytes (default 1)
///   socket.write_fail   write_all() reports a broken connection (EPIPE)

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace sgl::service {

/// An owned file descriptor (close-on-destroy, move-only).
class unix_fd {
 public:
  unix_fd() = default;
  explicit unix_fd(int fd) noexcept : fd_{fd} {}
  ~unix_fd() { reset(); }

  unix_fd(unix_fd&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  unix_fd& operator=(unix_fd&& other) noexcept;
  unix_fd(const unix_fd&) = delete;
  unix_fd& operator=(const unix_fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain stream socket at `path`, replacing a
/// stale socket file if one exists.  Throws std::runtime_error (with
/// errno text) on failure, including paths longer than sockaddr_un allows.
[[nodiscard]] unix_fd unix_listen(const std::string& path);

/// Accepts one connection; empty fd on EINTR/shutdown-race.
[[nodiscard]] unix_fd unix_accept(const unix_fd& listener);

/// Accepts with a timeout: waits up to `timeout_ms` for a connection, then
/// returns an empty fd so the caller can poll a shutdown flag.  Also empty
/// on EINTR (a signal is exactly when the flag needs checking).
[[nodiscard]] unix_fd unix_accept_interruptible(const unix_fd& listener, int timeout_ms);

/// Connects to the daemon at `path`.  Throws std::runtime_error on
/// failure (usual cause: no daemon running there).
[[nodiscard]] unix_fd unix_connect(const std::string& path);

/// Writes all of `data`, retrying on EINTR/short writes.  Returns false
/// on a broken connection (EPIPE and friends) — never raises SIGPIPE.
[[nodiscard]] bool write_all(int fd, std::string_view data);

/// Upper bound on one JSONL line accepted from a peer.  Generous for real
/// requests (the largest legitimate submit is a few KiB of sweep grid) but
/// small enough that a hostile or broken client cannot balloon the
/// daemon's memory one connection at a time.
inline constexpr std::size_t k_default_max_line = 4u << 20;  // 4 MiB

/// Splits a byte stream into '\n'-terminated lines.
class line_reader {
 public:
  explicit line_reader(std::size_t max_line = k_default_max_line) noexcept
      : max_line_{max_line} {}

  /// The next line (without the terminator), nullopt at end-of-stream.
  /// A final unterminated line is returned as-is before the nullopt.
  /// Throws std::runtime_error on a read error, or when a line exceeds
  /// the max-line bound before its newline arrives.
  [[nodiscard]] std::optional<std::string> next_line(int fd);

 private:
  std::string buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  std::size_t max_line_;
  bool eof_ = false;
};

}  // namespace sgl::service
