#pragma once

/// \file service.h
/// The sociolearnd wire protocol: requests in, JSONL events out.
///
/// A `session` is one client conversation, independent of transport — the
/// daemon gives it a socket-backed write_line, `--once` mode a
/// stdout-backed one, and tests an in-memory one.  Requests arrive one
/// JSON object per line:
///
///   {"op":"submit", "spec": "<canonical scenario text>",
///    "set": ["key=value", ...], "sweep": ["key=v1,v2", ...],
///    "horizon": T, "replications": R, "seed": S,
///    "probes": ["regret", ...], "priority": 0, "timeout": seconds}
///   {"op":"status", "job": N}
///   {"op":"cancel", "job": N}
///
/// and events flow back as JSONL (one object per line, in this order for
/// a submission):
///
///   {"event":"job_accepted","job":N,"points":P,"digests":[...]}
///   {"event":"cache_hit","job":N,"point":i,"result":{...payload...}}   (0+)
///   {"event":"point_done","job":N,"point":i,"seconds":s,"result":{...}} (0+)
///   {"event":"job_done","job":N,"status":"done|cancelled|failed", ...}
///
/// plus {"event":"status",...}, {"event":"cancel_result",...} and
/// {"event":"error","message":...} replies.  A submit refused by a full
/// bounded queue gets {"event":"job_rejected","reason":"queue_full",
/// "limit":L,...} instead of job_accepted — explicit backpressure the
/// client retries with backoff (nothing was enqueued).  The `result`
/// object of a
/// cache_hit is byte-identical to the point_done `result` the original
/// computation produced — that is the store's contract, and the
/// service-smoke CI job asserts it over the real wire.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/job_queue.h"

namespace sgl {
struct json_value;  // support/json_parse.h
}

namespace sgl::service {

struct session_options {
  /// Writes one event line (the JSON object, no trailing newline — the
  /// session appends it).  Returns false once the peer is gone; the
  /// session then cancels this session's outstanding jobs and drops
  /// further events.  Called from session, dispatcher, and worker
  /// threads, but never concurrently (internal mutex).
  std::function<bool(std::string_view line)> write_line;

  /// Crash-test hook: invoked after each *computed* point's event has
  /// been written (never for cache hits).  The daemon's
  /// --exit-after-points uses it to die at a deterministic place so CI
  /// can test kill-and-resume.
  std::function<void()> on_point_computed;

  /// Wall-clock budget applied to submissions that do not carry their own
  /// "timeout" field (0 = none).  The daemon's --job-timeout.
  double default_timeout_seconds = 0.0;
};

class session {
 public:
  session(job_queue& queue, session_options options);

  /// Finishes outstanding jobs (waits; cancels first if the peer is
  /// already gone, which stops them at the next work item).
  ~session();

  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Parses and executes one request line.  Malformed requests produce an
  /// "error" event, never an exception; blank lines are ignored.
  void handle_line(std::string_view line);

  /// Blocks until every job submitted through this session has reached a
  /// terminal state and its job_done event has been written.
  void finish();

  /// True once write_line reported the peer gone.
  [[nodiscard]] bool peer_closed() const;

 private:
  void handle_submit(const json_value& request);
  void handle_status(const json_value& request);
  void handle_cancel(const json_value& request);
  bool emit(std::string_view line);
  void emit_error(std::string_view message);
  void cancel_outstanding();

  job_queue& queue_;
  session_options options_;

  mutable std::mutex mutex_;  // write serialization + bookkeeping
  std::condition_variable idle_;
  std::vector<std::uint64_t> jobs_;  // submitted through this session
  std::size_t outstanding_ = 0;      // jobs whose job_done is not yet written
  bool peer_closed_ = false;
};

}  // namespace sgl::service
