#include "service/service.h"

#include <exception>
#include <sstream>
#include <stdexcept>

#include "scenario/serialize.h"
#include "support/json.h"
#include "support/json_parse.h"

namespace sgl::service {
namespace {

/// Reads an optional array-of-strings field ("set", "sweep", "probes").
std::vector<std::string> string_list(const json_value& request, std::string_view key) {
  const json_value* field = request.find(key);
  if (field == nullptr) return {};
  if (!field->is_array()) {
    throw std::invalid_argument{"request field '" + std::string{key} +
                                "' must be an array of strings"};
  }
  std::vector<std::string> out;
  out.reserve(field->items.size());
  for (const json_value& item : field->items) {
    out.push_back(item.as_string(key));
  }
  return out;
}

}  // namespace

session::session(job_queue& queue, session_options options)
    : queue_{queue}, options_{std::move(options)} {}

session::~session() {
  if (peer_closed()) cancel_outstanding();
  finish();
}

bool session::peer_closed() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return peer_closed_;
}

bool session::emit(std::string_view line) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (peer_closed_) return false;
  if (!options_.write_line || !options_.write_line(line)) {
    peer_closed_ = true;
    return false;
  }
  return true;
}

void session::emit_error(std::string_view message) {
  std::ostringstream out;
  json_writer json{out, /*indent=*/0};
  json.begin_object();
  json.key("event").value("error");
  json.key("message").value(message);
  json.end_object();
  emit(out.str());
}

void session::cancel_outstanding() {
  std::vector<std::uint64_t> jobs;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    jobs = jobs_;
  }
  for (const std::uint64_t id : jobs) queue_.cancel(id);
}

void session::finish() {
  std::unique_lock<std::mutex> lock{mutex_};
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

void session::handle_line(std::string_view line) {
  // Trim the usual whitespace so a CRLF client works.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
    line.remove_suffix(1);
  }
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
    line.remove_prefix(1);
  }
  if (line.empty()) return;

  try {
    const json_value request = parse_json(line);
    if (!request.is_object()) {
      throw std::invalid_argument{"request must be a JSON object"};
    }
    const json_value* op = request.find("op");
    if (op == nullptr) throw std::invalid_argument{"request has no 'op' field"};
    const std::string& name = op->as_string("op");
    if (name == "submit") {
      handle_submit(request);
    } else if (name == "status") {
      handle_status(request);
    } else if (name == "cancel") {
      handle_cancel(request);
    } else {
      throw std::invalid_argument{"unknown op '" + name +
                                  "' (known: submit, status, cancel)"};
    }
  } catch (const std::exception& e) {
    emit_error(e.what());
  }
}

void session::handle_submit(const json_value& request) {
  const json_value* spec_text = request.find("spec");
  if (spec_text == nullptr) {
    throw std::invalid_argument{"submit: missing 'spec' (canonical scenario text)"};
  }

  job_request job;
  job.base = scenario::parse_scenario(spec_text->as_string("spec"));
  for (const std::string& assignment : string_list(request, "set")) {
    scenario::apply_override(job.base, assignment);
  }

  std::vector<scenario::sweep_axis> axes;
  for (const std::string& axis : string_list(request, "sweep")) {
    axes.push_back(scenario::parse_sweep_axis(axis));
  }
  if (!axes.empty()) job.grid = scenario::expand_sweep(axes);

  if (const json_value* field = request.find("horizon")) {
    job.config.horizon = field->as_uint64("horizon");
  }
  if (const json_value* field = request.find("replications")) {
    job.config.replications = field->as_uint64("replications");
  }
  if (const json_value* field = request.find("seed")) {
    job.config.seed = field->as_uint64("seed");
  }
  job.probe_specs = string_list(request, "probes");
  if (const json_value* field = request.find("priority")) {
    job.priority = static_cast<int>(field->as_int64("priority"));
  }
  job.timeout_seconds = options_.default_timeout_seconds;
  if (const json_value* field = request.find("timeout")) {
    job.timeout_seconds = field->as_double("timeout");
    if (!(job.timeout_seconds >= 0.0)) {
      throw std::invalid_argument{"submit: 'timeout' must be >= 0 seconds"};
    }
  }

  // The digests are the submission's cache identity; echoing them in
  // job_accepted lets a client correlate results with its own store scans.
  const std::vector<digest128> digests = queue_.point_digests(job);

  job_sinks sinks;
  sinks.on_point = [this](const job_point_event& event) {
    std::ostringstream out;
    json_writer json{out, /*indent=*/0};
    json.begin_object();
    json.key("event").value(event.cache_hit ? "cache_hit" : "point_done");
    json.key("job").value(event.job);
    json.key("point").value(static_cast<std::uint64_t>(event.index));
    if (!event.cache_hit) json.key("seconds").value(event.seconds);
    json.key("result").raw(*event.payload);
    json.end_object();
    const bool delivered = emit(out.str());
    if (!delivered) cancel_outstanding();
    if (!event.cache_hit && options_.on_point_computed) options_.on_point_computed();
  };
  sinks.on_done = [this](const job_done_event& event) {
    std::ostringstream out;
    json_writer json{out, /*indent=*/0};
    json.begin_object();
    json.key("event").value("job_done");
    json.key("job").value(event.job);
    json.key("status").value(job_state_name(event.state));
    if (!event.error.empty()) json.key("error").value(event.error);
    json.key("total").value(static_cast<std::uint64_t>(event.total));
    json.key("computed").value(static_cast<std::uint64_t>(event.computed));
    json.key("cached").value(static_cast<std::uint64_t>(event.cached));
    json.end_object();
    emit(out.str());
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (outstanding_ > 0) --outstanding_;
    }
    idle_.notify_all();
  };

  // The acceptance callback runs after the id is assigned but before the
  // job can produce events, so job_accepted is always the first line a
  // client sees for its job — even when the whole job finishes faster
  // than submit() returns.
  const auto on_accepted = [this, &digests](std::uint64_t id) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      jobs_.push_back(id);
    }
    std::ostringstream out;
    json_writer json{out, /*indent=*/0};
    json.begin_object();
    json.key("event").value("job_accepted");
    json.key("job").value(id);
    json.key("points").value(static_cast<std::uint64_t>(digests.size()));
    json.key("digests").begin_array();
    for (const digest128& digest : digests) json.value(digest.hex());
    json.end_array();
    json.end_object();
    emit(out.str());
  };

  // Count the job as outstanding before submit: its events may fire
  // before submit() even returns.
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++outstanding_;
  }
  try {
    queue_.submit(std::move(job), std::move(sinks), on_accepted);
  } catch (const queue_full_error& e) {
    // Backpressure, not an error event: the explicit reply tells the
    // client nothing was enqueued and a verbatim resubmission is safe
    // (and free, once the points exist — the digests dedupe it).
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      --outstanding_;
    }
    std::ostringstream out;
    json_writer json{out, /*indent=*/0};
    json.begin_object();
    json.key("event").value("job_rejected");
    json.key("reason").value("queue_full");
    json.key("limit").value(static_cast<std::uint64_t>(e.limit()));
    json.key("message").value(e.what());
    json.end_object();
    emit(out.str());
  } catch (...) {
    const std::lock_guard<std::mutex> lock{mutex_};
    --outstanding_;
    throw;
  }
}

void session::handle_status(const json_value& request) {
  const json_value* id = request.find("job");
  if (id == nullptr) throw std::invalid_argument{"status: missing 'job'"};
  const std::uint64_t job = id->as_uint64("job");
  const std::optional<job_status> status = queue_.status(job);
  if (!status) {
    throw std::invalid_argument{"status: unknown job " + std::to_string(job)};
  }
  std::ostringstream out;
  json_writer json{out, /*indent=*/0};
  json.begin_object();
  json.key("event").value("status");
  json.key("job").value(job);
  json.key("state").value(job_state_name(status->state));
  json.key("priority").value(static_cast<std::int64_t>(status->priority));
  json.key("total").value(static_cast<std::uint64_t>(status->total));
  json.key("computed").value(static_cast<std::uint64_t>(status->computed));
  json.key("cached").value(static_cast<std::uint64_t>(status->cached));
  json.end_object();
  emit(out.str());
}

void session::handle_cancel(const json_value& request) {
  const json_value* id = request.find("job");
  if (id == nullptr) throw std::invalid_argument{"cancel: missing 'job'"};
  const std::uint64_t job = id->as_uint64("job");
  const bool cancelled = queue_.cancel(job);
  std::ostringstream out;
  json_writer json{out, /*indent=*/0};
  json.begin_object();
  json.key("event").value("cancel_result");
  json.key("job").value(job);
  json.key("cancelled").value(cancelled);
  json.end_object();
  emit(out.str());
}

}  // namespace sgl::service
