#include "service/job_queue.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <span>
#include <stdexcept>

#include "scenario/serialize.h"
#include "scenario/sweep.h"
#include "service/payload.h"
#include "support/failpoint.h"

namespace sgl::service {

std::string_view job_state_name(job_state state) noexcept {
  switch (state) {
    case job_state::queued: return "queued";
    case job_state::running: return "running";
    case job_state::done: return "done";
    case job_state::cancelled: return "cancelled";
    case job_state::failed: return "failed";
  }
  return "unknown";
}

job_queue::job_queue(result_store& store, unsigned worker_threads, std::size_t max_queued)
    : store_{store}, worker_threads_{worker_threads}, max_queued_{max_queued} {
  dispatcher_ = std::thread{[this] { dispatch_loop(); }};
}

job_queue::~job_queue() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shutdown_ = true;
    paused_ = false;
    for (auto& [id, job] : jobs_) {
      job->stop.store(true, std::memory_order_release);
      job->user_cancelled.store(true, std::memory_order_release);
    }
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::vector<digest128> job_queue::point_digests(const job_request& request) const {
  core::check_run_config(request.config);
  const std::size_t points = request.grid.empty() ? 1 : request.grid.size();
  std::vector<digest128> digests;
  digests.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    scenario::scenario_spec spec = request.base;
    if (!request.grid.empty()) {
      for (const auto& [key, value] : request.grid[p]) {
        scenario::apply_override(spec, key, value);
      }
    }
    scenario::validate_spec(spec);
    digests.push_back(spec_digest(spec, request.config, request.probe_specs));
  }
  return digests;
}

std::uint64_t job_queue::submit(job_request request, job_sinks sinks,
                                const std::function<void(std::uint64_t)>& on_accepted) {
  request.config.threads = worker_threads_;  // capacity is the daemon's call

  // Validate (and digest) every point before touching the queue: a bad
  // request throws here, at the submitter, and leaves no trace.
  std::vector<digest128> digests = point_digests(request);

  auto job = std::make_shared<job_record>();
  job->request = std::move(request);
  job->sinks = std::move(sinks);
  job->digests = std::move(digests);

  // Two-phase enqueue: register the job (so status() resolves the id),
  // run the acceptance callback, and only then make the job runnable.
  // Events always fire after on_accepted returns — without the split, a
  // sub-millisecond job could emit point_done before the acceptance line
  // was even written.
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (shutdown_) throw std::runtime_error{"job_queue: shutting down"};
    if (max_queued_ != 0) {
      // Bound the *waiting* jobs (pending_ may hold tombstones, so count
      // real queued state).  Nothing has been registered yet, so refusal
      // leaves no trace — the client just retries later.
      const std::size_t queued = static_cast<std::size_t>(
          std::count_if(jobs_.begin(), jobs_.end(), [](const auto& entry) {
            return entry.second->state == job_state::queued;
          }));
      if (queued >= max_queued_) throw queue_full_error{max_queued_};
    }
    id = next_id_++;
    job->id = id;
    jobs_.emplace(id, job);
  }
  if (on_accepted) on_accepted(id);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    // cancel() may have reached the job during on_accepted; a terminal
    // job must not enter pending_ (it would sit there as a tombstone the
    // sleeping dispatcher never clears, wedging drain()).
    if (job->state == job_state::queued) pending_.push_back(id);
  }
  wake_.notify_all();
  return id;
}

std::optional<job_status> job_queue::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const job_record& job = *it->second;
  job_status out;
  out.state = job.state;
  out.priority = job.request.priority;
  out.total = job.total();
  out.computed = job.computed.load(std::memory_order_relaxed);
  out.cached = job.cached.load(std::memory_order_relaxed);
  return out;
}

bool job_queue::cancel(std::uint64_t id) {
  std::shared_ptr<job_record> to_finish;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job_record& job = *it->second;
    switch (job.state) {
      case job_state::done:
      case job_state::cancelled:
      case job_state::failed:
        return false;  // already terminal
      case job_state::queued:
        // Never started: transition here so status() is immediately
        // truthful; the done event fires outside the lock below.
        job.state = job_state::cancelled;
        job.user_cancelled.store(true, std::memory_order_release);
        job.stop.store(true, std::memory_order_release);
        std::erase(pending_, id);
        to_finish = it->second;
        break;
      case job_state::running:
        job.user_cancelled.store(true, std::memory_order_release);
        job.stop.store(true, std::memory_order_release);
        break;
    }
  }
  if (to_finish) {
    if (to_finish->sinks.on_done) {
      job_done_event event;
      event.job = to_finish->id;
      event.state = job_state::cancelled;
      event.total = to_finish->total();
      to_finish->sinks.on_done(event);
    }
    settled_.notify_all();
  }
  return true;
}

std::size_t job_queue::cancel_all() {
  std::vector<std::uint64_t> ids;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::size_t cancelled = 0;
  for (const std::uint64_t id : ids) {
    if (cancel(id)) ++cancelled;
  }
  return cancelled;
}

void job_queue::pause() {
  const std::lock_guard<std::mutex> lock{mutex_};
  paused_ = true;
}

void job_queue::resume() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    paused_ = false;
  }
  wake_.notify_all();
}

void job_queue::drain() {
  resume();
  std::unique_lock<std::mutex> lock{mutex_};
  settled_.wait(lock, [this] {
    if (running_ || !pending_.empty()) return false;
    return std::all_of(jobs_.begin(), jobs_.end(), [](const auto& entry) {
      const job_state s = entry.second->state;
      return s == job_state::done || s == job_state::cancelled ||
             s == job_state::failed;
    });
  });
}

std::shared_ptr<job_queue::job_record> job_queue::take_next_locked() {
  // Highest priority wins; pending_ is submission order, so the first
  // match at the best priority is the FIFO choice.
  std::size_t best = pending_.size();
  int best_priority = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const auto it = jobs_.find(pending_[i]);
    if (it == jobs_.end() || it->second->state != job_state::queued) continue;
    if (best == pending_.size() || it->second->request.priority > best_priority) {
      best = i;
      best_priority = it->second->request.priority;
    }
  }
  if (best == pending_.size()) {
    pending_.clear();  // only tombstones left
    return nullptr;
  }
  auto job = jobs_.at(pending_[best]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

void job_queue::dispatch_loop() {
  for (;;) {
    std::shared_ptr<job_record> job;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      wake_.wait(lock, [this] {
        if (shutdown_) return true;
        if (paused_) return false;
        return std::any_of(pending_.begin(), pending_.end(), [this](std::uint64_t id) {
          const auto it = jobs_.find(id);
          return it != jobs_.end() && it->second->state == job_state::queued;
        });
      });
      if (shutdown_) return;
      job = take_next_locked();
      if (!job) continue;
      job->state = job_state::running;
      running_ = true;
    }
    run_job(*job);
    finish_job(*job);
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      running_ = false;
    }
    settled_.notify_all();
  }
}

void job_queue::run_job(job_record& job) {
  if (job.request.timeout_seconds <= 0.0) {
    run_job_points(job);
    return;
  }
  // Wall-clock watchdog: on expiry, raise the same stop flag cancel()
  // uses — the sweep scheduler checks it between work items, so every
  // point already completed stays persisted and the job finishes `failed`
  // with a timeout error instead of hanging a slot forever.
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool finished = false;
  std::thread watchdog{[&] {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>{job.request.timeout_seconds});
    std::unique_lock<std::mutex> lock{watchdog_mutex};
    if (watchdog_cv.wait_until(lock, deadline, [&] { return finished; })) return;
    {
      const std::lock_guard<std::mutex> error_lock{job.error_mutex};
      if (job.error.empty()) {
        job.error = "job timed out after " +
                    std::to_string(job.request.timeout_seconds) +
                    " s; completed points are persisted and a resubmission resumes from them";
      }
    }
    job.stop.store(true, std::memory_order_release);
  }};
  run_job_points(job);
  {
    const std::lock_guard<std::mutex> lock{watchdog_mutex};
    finished = true;
  }
  watchdog_cv.notify_all();
  watchdog.join();
}

void job_queue::run_job_points(job_record& job) {
  const std::size_t points = job.total();
  const core::run_config& config = job.request.config;
  const std::span<const std::string> probe_specs{job.request.probe_specs};

  // Pass 1 — serve everything the store already has.  Hits are emitted in
  // grid order before any computation starts, so a resubmission of a
  // finished sweep streams its whole result without touching the pool.
  std::vector<std::size_t> missing;
  for (std::size_t p = 0; p < points; ++p) {
    if (job.stop.load(std::memory_order_acquire)) return;
    if (std::optional<std::string> payload = store_.get(job.digests[p])) {
      job.cached.fetch_add(1, std::memory_order_relaxed);
      if (job.sinks.on_point) {
        job_point_event event;
        event.job = job.id;
        event.index = p;
        event.cache_hit = true;
        event.payload = &*payload;
        job.sinks.on_point(event);
      }
    } else {
      missing.push_back(p);
    }
  }
  if (missing.empty() || job.stop.load(std::memory_order_acquire)) return;

  // Pass 2 — compute only the missing points, as one flattened sweep.
  // Persist-then-emit: a point's event is only ever sent after its object
  // is durably in the store, so every acknowledged point survives a kill.
  std::vector<std::vector<std::pair<std::string, std::string>>> sub_grid;
  if (!job.request.grid.empty()) {
    sub_grid.reserve(missing.size());
    for (const std::size_t p : missing) sub_grid.push_back(job.request.grid[p]);
  }

  scenario::sweep_stream_hooks hooks;
  hooks.cancel = &job.stop;
  hooks.on_point = [&](std::size_t sub_index, scenario::sweep_point_result&& result) {
    const std::size_t p = missing[sub_index];
    try {
      if (failpoints::check("queue.point")) {
        throw std::runtime_error{"injected fail point 'queue.point' at grid index " +
                                 std::to_string(p)};
      }
      const std::vector<core::probe_report> reports = core::collect_reports(result.probes);
      const std::string payload =
          build_point_payload(job.digests[p], result.spec, config, probe_specs, reports);
      store_.put(job.digests[p], payload);
      job.computed.fetch_add(1, std::memory_order_relaxed);
      if (job.sinks.on_point) {
        job_point_event event;
        event.job = job.id;
        event.index = p;
        event.seconds = result.seconds;
        event.payload = &payload;
        job.sinks.on_point(event);
      }
    } catch (const std::exception& e) {
      // Most likely store_.put I/O failure.  Record the first error and
      // stop scheduling — a service that kept emitting unpersisted points
      // would violate the resume contract.
      {
        const std::lock_guard<std::mutex> lock{job.error_mutex};
        if (job.error.empty()) job.error = e.what();
      }
      job.stop.store(true, std::memory_order_release);
    }
  };

  try {
    run_sweep_streaming(job.request.base, job.request.grid.empty()
                                              ? std::span<const std::vector<
                                                    std::pair<std::string, std::string>>>{}
                                              : std::span{sub_grid},
                        config, probe_specs, hooks);
  } catch (const std::exception& e) {
    const std::lock_guard<std::mutex> lock{job.error_mutex};
    if (job.error.empty()) job.error = e.what();
  }
}

void job_queue::finish_job(job_record& job) {
  job_done_event event;
  event.job = job.id;
  event.total = job.total();
  event.computed = job.computed.load(std::memory_order_relaxed);
  event.cached = job.cached.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock{job.error_mutex};
    event.error = job.error;
  }
  if (!event.error.empty()) {
    event.state = job_state::failed;
  } else if (job.user_cancelled.load(std::memory_order_acquire)) {
    event.state = job_state::cancelled;
  } else {
    event.state = job_state::done;
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    job.state = event.state;
  }
  if (job.sinks.on_done) job.sinks.on_done(event);
}

}  // namespace sgl::service
