#include "service/payload.h"

#include <sstream>

#include "support/json.h"

namespace sgl::service {

std::string build_point_payload(const digest128& digest,
                                const scenario::scenario_spec& spec,
                                const core::run_config& config,
                                std::span<const std::string> probe_specs,
                                const std::vector<core::probe_report>& reports) {
  std::ostringstream out;
  json_writer json{out, /*indent=*/0};
  json.begin_object();
  json.key("digest").value(digest.hex());
  json.key("stream_derivation").value(k_stream_derivation_id);

  json.key("spec").begin_object();
  for (const auto& [key, value] : digest_fields(spec)) {
    json.key(key).raw(value);  // canonical values are JSON-compatible
  }
  json.end_object();

  json.key("run").begin_object();
  json.key("horizon").value(config.horizon);
  json.key("replications").value(config.replications);
  json.key("seed").value(config.seed);
  json.end_object();

  json.key("probe_specs").begin_array();
  for (const std::string& probe : resolved_probes(spec, probe_specs)) {
    json.value(probe);
  }
  json.end_array();

  json.key("probes").begin_array();
  for (const auto& report : reports) {
    json.begin_object();
    json.key("probe").value(report.probe);
    json.key("scalars").begin_object();
    for (const auto& scalar : report.scalars) {
      json.key(scalar.key).begin_object();
      json.key("value").value(scalar.value);
      if (scalar.has_ci) json.key("half_width").value(scalar.half_width);
      json.end_object();
    }
    json.end_object();
    if (!report.series.empty()) {
      json.key("series").begin_object();
      for (const auto& series : report.series) {
        json.key(series.key).begin_array();
        for (const double v : series.values) json.value(v);
        json.end_array();
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return std::move(out).str();
}

}  // namespace sgl::service
