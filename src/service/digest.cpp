#include "service/digest.h"

#include <stdexcept>

#include "core/step_kernel.h"
#include "scenario/serialize.h"
#include "support/json.h"

namespace sgl::service {
namespace {

/// The stable name of a resolved engine (matches the text format's
/// `engine` values; auto_select is resolved before naming).
std::string_view engine_name(scenario::engine_kind kind) {
  using scenario::engine_kind;
  switch (kind) {
    case engine_kind::infinite: return "infinite";
    case engine_kind::aggregate: return "aggregate";
    case engine_kind::agent_based: return "agent_based";
    case engine_kind::grouped: return "grouped";
    case engine_kind::protocol: return "protocol";
    case engine_kind::auto_select: break;  // resolved away by the caller
  }
  throw std::logic_error{"digest: unresolved engine kind"};
}

/// What kernel an agent-based run of `spec` would execute on THIS host:
/// the finite_dynamics::set_kernel decision, including the SGL_KERNEL
/// override folded into vector_isa_available().
std::string_view resolved_kernel(const scenario::scenario_spec& spec) {
  switch (spec.engine_kernel) {
    case core::kernel_kind::scalar: return "scalar";
    case core::kernel_kind::simd: return "simd";
    case core::kernel_kind::auto_select: break;
  }
  return core::kernel::vector_isa_available() ? "simd" : "scalar";
}

}  // namespace

std::string digest128::hex() const {
  static constexpr char k_digits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = k_digits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = k_digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

digest128 fnv1a_128(std::string_view bytes) noexcept {
  // FNV-1a, 128-bit parameters (prime 2^88 + 2^8 + 0x3b).
  unsigned __int128 hash = (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
                           0x62b821756295c58dULL;
  const unsigned __int128 prime =
      (static_cast<unsigned __int128>(0x0000000001000000ULL) << 64) | 0x000000000000013bULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= prime;
  }
  return {static_cast<std::uint64_t>(hash >> 64), static_cast<std::uint64_t>(hash)};
}

std::vector<std::string> resolved_probes(const scenario::scenario_spec& spec,
                                         std::span<const std::string> requested) {
  if (!requested.empty()) return {requested.begin(), requested.end()};
  if (!spec.probes.empty()) return spec.probes;
  return {"regret"};
}

std::vector<std::pair<std::string, std::string>> digest_fields(
    const scenario::scenario_spec& spec) {
  if (spec.prebuilt_graph != nullptr) {
    throw std::invalid_argument{
        "spec_digest: the spec carries a prebuilt_graph, a runtime-only handle "
        "the canonical form cannot capture — build from a topology spec instead"};
  }
  const scenario::engine_kind resolved = scenario::resolved_engine(spec);
  const auto quoted = [](std::string_view name) {
    std::string out = "\"";
    out += name;
    out += '"';
    return out;
  };
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("engine", quoted(engine_name(resolved)));
  if (resolved == scenario::engine_kind::agent_based) {
    // Only the agent-based engine has a kernel choice; on every other
    // engine the field cannot affect the trajectory and is dropped so a
    // stray `kernel` setting never splits the cache.
    fields.emplace_back("kernel", quoted(resolved_kernel(spec)));
  }
  for (auto& [key, value] : scenario::scenario_fields(spec)) {
    if (key == "name" || key == "description" || key == "engine_threads" ||
        key == "engine" || key == "kernel") {
      continue;  // handled above / semantically inert
    }
    fields.emplace_back(std::move(key), std::move(value));
  }
  return fields;
}

std::string digest_input(const scenario::scenario_spec& spec,
                         const core::run_config& config,
                         std::span<const std::string> probe_specs) {
  std::string out = "sociolearn-result v1\n";
  out += "streams = \"";
  out += k_stream_derivation_id;
  out += "\"\n";
  for (const auto& [key, value] : digest_fields(spec)) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  out += "run.horizon = " + std::to_string(config.horizon) + '\n';
  out += "run.replications = " + std::to_string(config.replications) + '\n';
  out += "run.seed = " + std::to_string(config.seed) + '\n';
  out += "probes = [";
  bool first = true;
  for (const std::string& probe : resolved_probes(spec, probe_specs)) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(probe) + '"';
  }
  out += "]\n";
  return out;
}

digest128 spec_digest(const scenario::scenario_spec& spec, const core::run_config& config,
                      std::span<const std::string> probe_specs) {
  return fnv1a_128(digest_input(spec, config, probe_specs));
}

}  // namespace sgl::service
