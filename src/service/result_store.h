#pragma once

/// \file result_store.h
/// The on-disk content-addressed result cache behind sociolearnd.
///
/// Layout (DESIGN.md "Service mode" / "Failure model and recovery
/// guarantees"):
///
///   <root>/objects/<hh>/<32-hex-digest>.json   one completed point result
///   <root>/tmp/                                in-flight writes
///   <root>/quarantine/                         objects that failed verify
///
/// where <hh> is the first two hex characters of the digest (a fan-out so
/// a million cached points never lands in one directory).  Every object is
/// the *canonical compact JSON payload* of one completed (point, run
/// config, probe set) — exactly the bytes the service streams in
/// `point_done`/`cache_hit` events — followed by a checksum trailer line
/// (object format v2):
///
///   <payload bytes>\n
///   sgl-object-v1 <32-hex fnv1a-128 of the payload bytes>\n
///
/// so every object proves its own integrity.  get() verifies the trailer
/// and returns the payload alone; an object that fails verification (torn
/// write that slipped past rename, bit rot, truncation, a pre-v2 object)
/// is moved to quarantine/ and reported as a miss — a corrupt result is
/// *never served*, it is recomputed.
///
/// Writes are crash-safe: the framed object is written to a unique file
/// under tmp/, fsync()ed, and atomically rename()d into place, so a killed
/// daemon leaves either a complete verified object or none.  put() is
/// idempotent (last rename wins; every writer writes the same bytes,
/// because the digest pins the content).  Construction garbage-collects
/// tmp/ files whose writer pid is dead (a crashed writer's leftovers);
/// fsck() audits the whole store and, with repair, quarantines bad objects
/// and removes orphaned tmp files.
///
/// Fail-point sites (support/failpoint.h): store.tmp_open, store.write,
/// store.fsync, store.rename (all throw the injected error from put()),
/// and store.read (get() treats the object as unreadable — a miss, no
/// quarantine).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/digest.h"

namespace sgl::service {

/// The checksum trailer magic of object format v2.
inline constexpr std::string_view k_object_trailer_magic = "sgl-object-v1 ";

/// Frames a payload as the on-disk object bytes (payload + trailer).
[[nodiscard]] std::string frame_object(std::string_view payload);

/// Verifies framed object bytes and extracts the payload; nullopt when the
/// trailer is missing, malformed, or the checksum does not match.
[[nodiscard]] std::optional<std::string> unframe_object(std::string_view framed);

struct store_options {
  /// Remove tmp/ files left by dead writers during construction.  The
  /// daemon wants this; fsck opens the store with it off so orphans can be
  /// *reported* before anything touches them.
  bool gc_stale_tmp = true;
};

/// fsck() findings.  `corrupt` and `orphaned_tmp` carry store-relative
/// paths; with repair=true they name what was quarantined/removed.
struct fsck_report {
  std::uint64_t objects_ok = 0;
  std::vector<std::string> corrupt;       ///< objects failing verification
  std::vector<std::string> orphaned_tmp;  ///< tmp files from dead writers
  std::uint64_t quarantined = 0;          ///< files already in quarantine/
  bool repaired = false;

  [[nodiscard]] bool clean() const noexcept {
    return corrupt.empty() && orphaned_tmp.empty();
  }
};

class result_store {
 public:
  /// Opens (creating if needed) a store rooted at `root`.  Throws
  /// std::runtime_error when the directories cannot be created.
  explicit result_store(std::filesystem::path root, store_options options = {});

  /// The cached payload for `digest`, or nullopt.  Verifies the checksum
  /// trailer; a corrupt object is moved to quarantine/ and reported as a
  /// miss.  Thread-safe.
  [[nodiscard]] std::optional<std::string> get(const digest128& digest) const;

  /// Persists `payload` as the object for `digest` (framed; tmp + fsync +
  /// atomic rename; idempotent).  Throws std::runtime_error on I/O failure
  /// — a service that silently failed to persist would break the resume
  /// contract.  Never leaves a tmp file behind, even on the error paths.
  void put(const digest128& digest, std::string_view payload);

  /// Audits the store: verifies every object, lists tmp files from dead
  /// writers, counts quarantine/.  With repair, corrupt objects are moved
  /// to quarantine/ and orphaned tmp files removed (the report still lists
  /// them, with repaired=true).
  [[nodiscard]] fsck_report fsck(bool repair);

  /// Number of objects currently in the store (walks the directory; for
  /// tests and the status report, not hot paths).
  [[nodiscard]] std::uint64_t object_count() const;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Cumulative counters since construction (diagnostics/tests).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Objects get() moved to quarantine/ after a failed verification.
  [[nodiscard]] std::uint64_t quarantined() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }
  /// Stale tmp files removed by the construction-time GC.
  [[nodiscard]] std::uint64_t tmp_collected() const noexcept { return tmp_collected_; }

 private:
  [[nodiscard]] std::filesystem::path object_path(const digest128& digest) const;
  void quarantine_object(const std::filesystem::path& object) const;
  [[nodiscard]] std::vector<std::filesystem::path> stale_tmp_files() const;

  std::filesystem::path root_;
  // get() is logically const; the counters are observability only.
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  std::uint64_t tmp_collected_ = 0;
  std::atomic<std::uint64_t> write_seq_{0};
};

}  // namespace sgl::service
