#pragma once

/// \file result_store.h
/// The on-disk content-addressed result cache behind sociolearnd.
///
/// Layout (DESIGN.md "Service mode"):
///
///   <root>/objects/<hh>/<32-hex-digest>.json   one completed point result
///   <root>/tmp/                                in-flight writes
///
/// where <hh> is the first two hex characters of the digest (a fan-out so
/// a million cached points never lands in one directory).  Every object is
/// the *canonical compact JSON payload* of one completed (point, run
/// config, probe set) — exactly the bytes the service streams in
/// `point_done`/`cache_hit` events, so a cache hit is byte-identical to
/// the original computation.
///
/// Writes are crash-safe: the payload is written to a unique file under
/// tmp/ and atomically rename()d into place, so a killed daemon leaves
/// either a complete object or none — a half-written result can never be
/// served.  put() is idempotent (last rename wins; every writer writes the
/// same bytes, because the digest pins the content).  Checkpoint/resume is
/// a consequence, not a feature: a restarted sweep recomputes exactly the
/// points whose objects are missing.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "service/digest.h"

namespace sgl::service {

class result_store {
 public:
  /// Opens (creating if needed) a store rooted at `root`.  Throws
  /// std::runtime_error when the directories cannot be created.
  explicit result_store(std::filesystem::path root);

  /// The cached payload for `digest`, or nullopt.  Thread-safe.
  [[nodiscard]] std::optional<std::string> get(const digest128& digest) const;

  /// Persists `payload` as the object for `digest` (atomic tmp + rename;
  /// idempotent).  Throws std::runtime_error on I/O failure — a service
  /// that silently failed to persist would break the resume contract.
  void put(const digest128& digest, std::string_view payload);

  /// Number of objects currently in the store (walks the directory; for
  /// tests and the status report, not hot paths).
  [[nodiscard]] std::uint64_t object_count() const;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Cumulative get() outcomes since construction (diagnostics/tests).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::filesystem::path object_path(const digest128& digest) const;

  std::filesystem::path root_;
  // get() is logically const; the counters are observability only.
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> write_seq_{0};
};

}  // namespace sgl::service
