#pragma once

/// \file payload.h
/// The canonical point-result payload: the bytes the result store persists
/// and the service streams.
///
/// One payload describes one completed (point spec, run config, probe set)
/// computation.  It is *canonical compact JSON* — json_writer with
/// indent 0, fields in a fixed order, spec fields in digest_fields() order,
/// doubles in shortest-round-trip form — so recomputing the same digest
/// always produces the same bytes, and "served from cache" is
/// byte-for-byte indistinguishable from "computed just now".  That is the
/// property the cache/resume tests pin and the reason wall-clock timing is
/// *not* part of the payload: the service reports timing in the event
/// wrapper around the payload, never inside it.

#include <span>
#include <string>

#include "core/experiment.h"
#include "core/probe.h"
#include "scenario/scenario.h"
#include "service/digest.h"

namespace sgl::service {

/// Serializes one completed point.  `digest` must be
/// spec_digest(spec, config, probe_specs); `reports` are the point's merged
/// probe reports in probe order.  Throws as digest_fields (prebuilt_graph).
[[nodiscard]] std::string build_point_payload(const digest128& digest,
                                              const scenario::scenario_spec& spec,
                                              const core::run_config& config,
                                              std::span<const std::string> probe_specs,
                                              const std::vector<core::probe_report>& reports);

}  // namespace sgl::service
