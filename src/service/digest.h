#pragma once

/// \file digest.h
/// Content addresses for run results — the cache-soundness keystone of the
/// sociolearnd service (DESIGN.md "Service mode").
///
/// A cached result may stand in for a recomputation only because the repo
/// pins two contracts:
///
///   * the canonical serializer (scenario/serialize.h) is field-exact:
///     specs that print the same text run bit-identically;
///   * the harness is bit-identical across thread counts, engine reuse,
///     and sweep interleaving (tests/harness_determinism_test.cpp), so the
///     *only* inputs that can change a merged probe result are the ones
///     hashed here.
///
/// spec_digest therefore keys a result by exactly the semantically
/// meaningful inputs and nothing else:
///
///   * the canonical spec fields, minus `name`, `description` and
///     `engine_threads` (documentation and thread counts never change a
///     trajectory), with `engine` pre-resolved (auto_select hashes as what
///     it resolves to) and `kernel` resolved against the host's vector ISA
///     — `kernel = auto` means different stream derivations on different
///     hosts, so the *decision*, not the request, is hashed;
///   * the run shape: horizon, replications, master seed (config.threads
///     and config.reuse are excluded — bit-identity makes them free);
///   * the resolved probe list, in order (probes never consume RNG, but
///     they ARE the result payload);
///   * the stream-derivation version tag k_stream_derivation_id — bump it
///     whenever any RNG stream derivation changes and every previously
///     cached result is invalidated at once.
///
/// The digest is a 128-bit FNV-1a over the canonical input text, exposed
/// as digest_input() so tests (and humans debugging a cache miss) can see
/// precisely what was hashed.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "scenario/scenario.h"

namespace sgl::service {

/// The RNG stream-derivation epoch baked into every digest.  Covers v2
/// (scalar per-(step, shard) streams) + v3 (counter-based SIMD lanes) +
/// the protocol engine's per-replication simulation seed.  Any change to
/// any derivation MUST bump this tag, or stale cached results would be
/// served as current ones.
inline constexpr std::string_view k_stream_derivation_id = "v2+v3";

/// A 128-bit content address.
struct digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters.
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const digest128&, const digest128&) = default;
};

/// 128-bit FNV-1a of arbitrary bytes (the hash behind spec_digest).
[[nodiscard]] digest128 fnv1a_128(std::string_view bytes) noexcept;

/// The probe specs a run of `spec` would actually install, mirroring the
/// fallback rule of run_sweep / run_probes: `requested` when non-empty,
/// else the spec's own probes, else {"regret"}.
[[nodiscard]] std::vector<std::string> resolved_probes(
    const scenario::scenario_spec& spec, std::span<const std::string> requested);

/// The canonical digest-input fields, in order — the exact lines that get
/// hashed, exposed for tests and for the cached payload's spec echo.
/// Throws std::invalid_argument when spec.prebuilt_graph is set (a runtime
/// handle the canonical form cannot capture — hashing it would be unsound).
[[nodiscard]] std::vector<std::pair<std::string, std::string>> digest_fields(
    const scenario::scenario_spec& spec);

/// The full canonical input text: a header with the format and
/// stream-derivation tags, the digest_fields, the run shape, and the
/// resolved probe list.
[[nodiscard]] std::string digest_input(const scenario::scenario_spec& spec,
                                       const core::run_config& config,
                                       std::span<const std::string> probe_specs);

/// digest_input, hashed.
[[nodiscard]] digest128 spec_digest(const scenario::scenario_spec& spec,
                                    const core::run_config& config,
                                    std::span<const std::string> probe_specs);

}  // namespace sgl::service
