#include "service/result_store.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>  // getpid, for unique tmp names across processes
#endif

namespace sgl::service {
namespace {

std::uint64_t process_id() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

result_store::result_store(std::filesystem::path root) : root_{std::move(root)} {
  std::error_code ec;
  std::filesystem::create_directories(root_ / "objects", ec);
  if (!ec) std::filesystem::create_directories(root_ / "tmp", ec);
  if (ec) {
    throw std::runtime_error{"result_store: cannot create '" + root_.string() +
                             "': " + ec.message()};
  }
}

std::filesystem::path result_store::object_path(const digest128& digest) const {
  const std::string hex = digest.hex();
  return root_ / "objects" / hex.substr(0, 2) / (hex + ".json");
}

std::optional<std::string> result_store::get(const digest128& digest) const {
  std::ifstream in{object_path(digest), std::ios::binary};
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return std::move(buffer).str();
}

void result_store::put(const digest128& digest, std::string_view payload) {
  const std::filesystem::path target = object_path(digest);
  std::error_code ec;
  std::filesystem::create_directories(target.parent_path(), ec);
  if (ec) {
    throw std::runtime_error{"result_store: cannot create shard directory '" +
                             target.parent_path().string() + "': " + ec.message()};
  }

  // Unique within the process via the sequence counter, across processes
  // via the pid; rename() onto the final path is atomic on POSIX, so
  // readers only ever see complete objects.
  const std::uint64_t seq = write_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path tmp =
      root_ / "tmp" /
      (digest.hex() + "." + std::to_string(process_id()) + "." + std::to_string(seq));
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      throw std::runtime_error{"result_store: cannot open '" + tmp.string() +
                               "' for writing"};
    }
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      throw std::runtime_error{"result_store: short write to '" + tmp.string() + "'"};
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    throw std::runtime_error{"result_store: cannot move object into place at '" +
                             target.string() + "': " + ec.message()};
  }
}

std::uint64_t result_store::object_count() const {
  std::uint64_t count = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it{root_ / "objects", ec};
  if (ec) return 0;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) ++count;
  }
  return count;
}

}  // namespace sgl::service
