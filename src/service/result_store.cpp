#include "service/result_store.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "support/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define SGL_STORE_POSIX 1
#endif

namespace sgl::service {
namespace {

std::uint64_t process_id() noexcept {
#if defined(SGL_STORE_POSIX)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Whether the writer pid embedded in a tmp file name is certainly gone.
/// Our own pid counts as dead: any tmp file of ours predating this
/// constructor is from before a crash-and-restart within one pid, or an
/// abandoned error path — either way stale.
bool writer_is_dead(std::uint64_t pid) noexcept {
#if defined(SGL_STORE_POSIX)
  if (pid == process_id()) return true;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return false;
  return errno == ESRCH;
#else
  (void)pid;
  return true;
#endif
}

/// Parses "<digest-hex>.<pid>.<seq>"; nullopt when the name is not one of
/// ours (leave foreign files alone).
std::optional<std::uint64_t> tmp_writer_pid(const std::string& name) {
  const std::size_t first = name.find('.');
  if (first == std::string::npos) return std::nullopt;
  const std::size_t second = name.find('.', first + 1);
  if (second == std::string::npos) return std::nullopt;
  const std::string pid_text = name.substr(first + 1, second - first - 1);
  if (pid_text.empty()) return std::nullopt;
  std::uint64_t pid = 0;
  for (const char c : pid_text) {
    if (c < '0' || c > '9') return std::nullopt;
    pid = pid * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return pid;
}

/// Throws the std::runtime_error an injected firing of `site` simulates.
[[noreturn]] void injected_failure(std::string_view site, const std::string& path) {
  throw std::runtime_error{"result_store: injected fail point '" + std::string{site} +
                           "' at '" + path + "'"};
}

/// Removes `tmp` on destruction unless disarmed — put()'s error paths must
/// never leak an in-flight file, even when the cleanup itself is reached
/// by an exception.
class tmp_guard {
 public:
  explicit tmp_guard(std::filesystem::path tmp) : tmp_{std::move(tmp)} {}
  ~tmp_guard() {
    if (!armed_) return;
    std::error_code ec;
    std::filesystem::remove(tmp_, ec);  // best effort; never throws
  }
  void disarm() noexcept { armed_ = false; }

 private:
  std::filesystem::path tmp_;
  bool armed_ = true;
};

}  // namespace

std::string frame_object(std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 1 + k_object_trailer_magic.size() + 33);
  framed.append(payload);
  framed += '\n';
  framed.append(k_object_trailer_magic);
  framed += fnv1a_128(payload).hex();
  framed += '\n';
  return framed;
}

std::optional<std::string> unframe_object(std::string_view framed) {
  // <payload>\n<magic><32 hex>\n — fixed-size trailer, so slice from the end.
  const std::size_t trailer_size = k_object_trailer_magic.size() + 33;
  if (framed.size() < trailer_size + 1 || framed.back() != '\n') return std::nullopt;
  const std::size_t payload_size = framed.size() - trailer_size - 1;
  if (framed[payload_size] != '\n') return std::nullopt;
  const std::string_view trailer = framed.substr(payload_size + 1, trailer_size - 1);
  if (trailer.substr(0, k_object_trailer_magic.size()) != k_object_trailer_magic) {
    return std::nullopt;
  }
  const std::string_view payload = framed.substr(0, payload_size);
  const std::string_view checksum = trailer.substr(k_object_trailer_magic.size());
  if (checksum != fnv1a_128(payload).hex()) return std::nullopt;
  return std::string{payload};
}

result_store::result_store(std::filesystem::path root, store_options options)
    : root_{std::move(root)} {
  std::error_code ec;
  std::filesystem::create_directories(root_ / "objects", ec);
  if (!ec) std::filesystem::create_directories(root_ / "tmp", ec);
  if (!ec) std::filesystem::create_directories(root_ / "quarantine", ec);
  if (ec) {
    throw std::runtime_error{"result_store: cannot create '" + root_.string() +
                             "': " + ec.message()};
  }
  if (options.gc_stale_tmp) {
    for (const std::filesystem::path& stale : stale_tmp_files()) {
      std::filesystem::remove(stale, ec);
      if (!ec) ++tmp_collected_;
    }
  }
}

std::vector<std::filesystem::path> result_store::stale_tmp_files() const {
  std::vector<std::filesystem::path> stale;
  std::error_code ec;
  std::filesystem::directory_iterator it{root_ / "tmp", ec};
  if (ec) return stale;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::optional<std::uint64_t> pid = tmp_writer_pid(entry.path().filename().string());
    if (pid && writer_is_dead(*pid)) stale.push_back(entry.path());
  }
  return stale;
}

std::filesystem::path result_store::object_path(const digest128& digest) const {
  const std::string hex = digest.hex();
  return root_ / "objects" / hex.substr(0, 2) / (hex + ".json");
}

void result_store::quarantine_object(const std::filesystem::path& object) const {
  std::error_code ec;
  const std::filesystem::path target = root_ / "quarantine" / object.filename();
  std::filesystem::rename(object, target, ec);
  if (ec) std::filesystem::remove(object, ec);  // never serve it again
  quarantined_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::string> result_store::get(const digest128& digest) const {
  const std::filesystem::path path = object_path(digest);
  std::string framed;
  {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const bool read_failed =
        (!in.good() && !in.eof()) || failpoints::check("store.read").has_value();
    if (read_failed) {
      // An unreadable object is a miss, not a corrupt one: the bytes on
      // disk may be fine (EIO, mount hiccup), so don't quarantine.
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    framed = std::move(buffer).str();
  }
  std::optional<std::string> payload = unframe_object(framed);
  if (!payload) {
    // Failed verification: torn bytes, truncation, or a pre-v2 object.
    // Quarantine so it is never looked at again, and recompute.
    quarantine_object(path);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return payload;
}

void result_store::put(const digest128& digest, std::string_view payload) {
  const std::filesystem::path target = object_path(digest);
  std::error_code ec;
  std::filesystem::create_directories(target.parent_path(), ec);
  if (ec) {
    throw std::runtime_error{"result_store: cannot create shard directory '" +
                             target.parent_path().string() + "': " + ec.message()};
  }

  // Unique within the process via the sequence counter, across processes
  // via the pid; rename() onto the final path is atomic on POSIX, so
  // readers only ever see complete objects.
  const std::uint64_t seq = write_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path tmp =
      root_ / "tmp" /
      (digest.hex() + "." + std::to_string(process_id()) + "." + std::to_string(seq));
  const std::string framed = frame_object(payload);
  tmp_guard guard{tmp};

#if defined(SGL_STORE_POSIX)
  if (failpoints::check("store.tmp_open")) injected_failure("store.tmp_open", tmp.string());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error{"result_store: cannot open '" + tmp.string() +
                             "' for writing: " + std::strerror(errno)};
  }
  std::string_view remaining = framed;
  bool write_failed = failpoints::check("store.write").has_value();
  while (!write_failed && !remaining.empty()) {
    const ssize_t n = ::write(fd, remaining.data(), remaining.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed = true;
      break;
    }
    remaining.remove_prefix(static_cast<std::size_t>(n));
  }
  // fsync before rename: without it the rename can land while the data
  // blocks are still in flight, and a power cut would leave a complete-
  // looking name over torn bytes — exactly what the trailer exists to
  // catch, but the durable path should not rely on the net.
  const bool fsync_failed =
      !write_failed &&
      (failpoints::check("store.fsync").has_value() || ::fsync(fd) != 0);
  const int saved_errno = errno;
  ::close(fd);
  if (write_failed) {
    errno = saved_errno;
    throw std::runtime_error{"result_store: short write to '" + tmp.string() + "'"};
  }
  if (fsync_failed) {
    throw std::runtime_error{"result_store: fsync '" + tmp.string() +
                             "' failed: " + std::strerror(saved_errno)};
  }
#else
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      throw std::runtime_error{"result_store: cannot open '" + tmp.string() +
                               "' for writing"};
    }
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    out.flush();
    if (!out.good()) {
      throw std::runtime_error{"result_store: short write to '" + tmp.string() + "'"};
    }
  }
#endif

  if (failpoints::check("store.rename")) injected_failure("store.rename", target.string());
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    throw std::runtime_error{"result_store: cannot move object into place at '" +
                             target.string() + "': " + ec.message()};
  }
  guard.disarm();
}

fsck_report result_store::fsck(bool repair) {
  fsck_report report;
  report.repaired = repair;
  std::error_code ec;

  // Objects: every one must unframe and verify.
  std::filesystem::recursive_directory_iterator objects{root_ / "objects", ec};
  if (!ec) {
    for (const auto& entry : objects) {
      if (!entry.is_regular_file(ec)) continue;
      std::string framed;
      {
        std::ifstream in{entry.path(), std::ios::binary};
        std::ostringstream buffer;
        buffer << in.rdbuf();
        framed = std::move(buffer).str();
      }
      if (unframe_object(framed)) {
        ++report.objects_ok;
        continue;
      }
      report.corrupt.push_back(
          entry.path().lexically_relative(root_).generic_string());
      if (repair) quarantine_object(entry.path());
    }
  }

  // tmp/: anything whose writer is dead is an orphan.
  for (const std::filesystem::path& stale : stale_tmp_files()) {
    report.orphaned_tmp.push_back(stale.lexically_relative(root_).generic_string());
    if (repair) std::filesystem::remove(stale, ec);
  }

  // quarantine/: count what earlier verifications (or this repair) parked.
  std::filesystem::directory_iterator quarantine{root_ / "quarantine", ec};
  if (!ec) {
    for (const auto& entry : quarantine) {
      if (entry.is_regular_file(ec)) ++report.quarantined;
    }
  }
  return report;
}

std::uint64_t result_store::object_count() const {
  std::uint64_t count = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it{root_ / "objects", ec};
  if (ec) return 0;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) ++count;
  }
  return count;
}

}  // namespace sgl::service
