#pragma once

/// \file job_queue.h
/// sociolearnd's job queue: submitted scenarios/sweeps decomposed into the
/// flattened (point × shard) schedule, with priorities, cancellation, and
/// the content-addressed result cache in front of every point.
///
/// A job is one sweep (a single scenario is a one-point sweep).  submit()
/// validates every point and computes its digest up front — a bad spec
/// fails the submission, never a running job.  A dispatcher thread runs
/// jobs one at a time, highest priority first (FIFO within a priority);
/// each job's points are first checked against the result store (hits are
/// served without recomputation), and only the missing points enter the
/// sweep scheduler (scenario/sweep.h), which spreads their shards over the
/// process-wide worker pool.  Completed points are persisted *before*
/// their event is delivered, so an acknowledged point is always a cached
/// point — that ordering is what makes kill-and-resume exact.
///
/// Cancellation: cancel() takes effect between work items.  A queued job
/// goes straight to `cancelled`; a running job stops scheduling new shards
/// and keeps every point that still completed (persisted as usual), so a
/// cancelled sweep resubmitted later resumes from those points.
///
/// Overload robustness (DESIGN.md "Failure model and recovery
/// guarantees"): the queue can be bounded — submit() past the bound throws
/// queue_full_error, which the session layer turns into an explicit
/// `job_rejected` reply instead of letting memory grow without limit.  A
/// job may carry a wall-clock timeout; on expiry the job's stop flag is
/// raised (the same path cancel() uses), every point that already
/// completed stays persisted, and the job finishes `failed` with a timeout
/// error.  cancel_all() is the SIGTERM drain entry point.
///
/// Threading: sinks for one job are never invoked concurrently (cache
/// hits fire from the dispatcher before the sweep starts; computed points
/// fire from worker threads serialized by the sweep's emit mutex; job_done
/// fires from the dispatcher after the sweep returns), but *are* invoked
/// from different threads — sinks that share state with other jobs' sinks
/// must lock.  Sinks must not throw.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "scenario/scenario.h"
#include "service/digest.h"
#include "service/result_store.h"

namespace sgl::service {

enum class job_state { queued, running, done, cancelled, failed };

/// Stable lowercase name ("queued", "running", ...).
[[nodiscard]] std::string_view job_state_name(job_state state) noexcept;

/// submit() refused a job because the queue is at its bound.  Backpressure,
/// not failure: nothing was enqueued, and an identical resubmission later
/// is free of double-compute risk (the digests dedupe it).
class queue_full_error : public std::runtime_error {
 public:
  explicit queue_full_error(std::size_t limit)
      : std::runtime_error{"job queue full (limit " + std::to_string(limit) +
                           " queued jobs); retry later"},
        limit_{limit} {}
  [[nodiscard]] std::size_t limit() const noexcept { return limit_; }

 private:
  std::size_t limit_;
};

/// One submission: a base spec, a grid of per-point overrides (empty =
/// one point with no overrides, as in scenario/sweep.h), the run
/// configuration, the probe set, and a scheduling priority (higher runs
/// first; equal priorities run in submission order).
struct job_request {
  scenario::scenario_spec base;
  std::vector<std::vector<std::pair<std::string, std::string>>> grid;
  core::run_config config;
  std::vector<std::string> probe_specs;
  int priority = 0;
  /// Wall-clock budget in seconds; 0 = none.  Scheduling latency does not
  /// count — the clock starts when the job starts running.  Not part of
  /// the point digests (it changes when results arrive, never what they
  /// are), so a timed-out sweep resubmitted with a bigger budget resumes
  /// from its persisted points.
  double timeout_seconds = 0.0;
};

/// One point reaching its terminal "result available" state.  `payload`
/// borrows the canonical payload for the duration of the callback.
struct job_point_event {
  std::uint64_t job = 0;
  std::size_t index = 0;  ///< grid index (0 for a single scenario)
  bool cache_hit = false;
  double seconds = 0.0;  ///< point wall-clock; 0 for cache hits
  const std::string* payload = nullptr;
};

/// A job reaching a terminal state.
struct job_done_event {
  std::uint64_t job = 0;
  job_state state = job_state::done;  ///< done | cancelled | failed
  std::string error;                  ///< set when state == failed
  std::size_t total = 0;
  std::size_t computed = 0;
  std::size_t cached = 0;
};

/// Per-job event delivery (see the threading note above).
struct job_sinks {
  std::function<void(const job_point_event&)> on_point;
  std::function<void(const job_done_event&)> on_done;
};

/// A point-in-time view of one job.
struct job_status {
  job_state state = job_state::queued;
  int priority = 0;
  std::size_t total = 0;
  std::size_t computed = 0;
  std::size_t cached = 0;
};

class job_queue {
 public:
  /// `store` must outlive the queue.  `worker_threads` is forced onto
  /// every job's run_config (0 = hardware concurrency): thread count is
  /// semantically inert (bit-identical results either way), so it is the
  /// daemon's capacity decision, not the client's, and it is excluded
  /// from the digest.  `max_queued` bounds the number of jobs waiting to
  /// run (0 = unbounded); submit() past the bound throws queue_full_error.
  explicit job_queue(result_store& store, unsigned worker_threads = 0,
                     std::size_t max_queued = 0);

  /// Cancels whatever is queued or running and joins the dispatcher.
  ~job_queue();

  job_queue(const job_queue&) = delete;
  job_queue& operator=(const job_queue&) = delete;

  /// Validates every point (apply_override + validate_spec + digest) and
  /// enqueues the job.  Returns the job id.  Throws std::invalid_argument
  /// (as validate_spec / apply_override / spec_digest) without enqueuing
  /// anything on a bad request.
  ///
  /// `on_accepted`, when set, is invoked with the assigned id after the
  /// job is registered (status() works) but strictly before the job can
  /// run — an acceptance acknowledgement is guaranteed to precede every
  /// point and done event, no matter how fast the job is.  It is called
  /// without queue locks held and may block (e.g. on a socket write), but
  /// must not call back into submit() for re-entrancy reasons.
  std::uint64_t submit(job_request request, job_sinks sinks,
                       const std::function<void(std::uint64_t)>& on_accepted = {});

  /// The job's current status, or nullopt for an unknown id.
  [[nodiscard]] std::optional<job_status> status(std::uint64_t job) const;

  /// Requests cancellation.  Returns false for unknown ids and jobs
  /// already in a terminal state, true otherwise.
  bool cancel(std::uint64_t job);

  /// Cancels every queued and running job (the SIGTERM drain path).
  /// Returns the number of jobs that were not already terminal.  Follow
  /// with drain() to wait for the running job to stop and persist.
  std::size_t cancel_all();

  /// Stops the dispatcher from *starting* jobs (running jobs finish).
  /// For tests that need a deterministic queue to inspect or cancel.
  void pause();
  void resume();

  /// Blocks until every submitted job has reached a terminal state.
  /// Unpauses first — draining a paused queue would deadlock.
  void drain();

  /// Per-point digests of a would-be submission, in grid order — what
  /// submit() would key the cache with.  Same validation and exceptions
  /// as submit(), but nothing is enqueued.
  [[nodiscard]] std::vector<digest128> point_digests(const job_request& request) const;

 private:
  struct job_record {
    std::uint64_t id = 0;
    job_request request;
    job_sinks sinks;
    std::vector<digest128> digests;  // one per grid point
    job_state state = job_state::queued;  // guarded by queue mutex
    std::atomic<bool> stop{false};        // user cancel or internal failure
    std::atomic<bool> user_cancelled{false};
    std::atomic<std::size_t> computed{0};
    std::atomic<std::size_t> cached{0};
    std::mutex error_mutex;
    std::string error;  // first failure, guarded by error_mutex

    [[nodiscard]] std::size_t total() const {
      return request.grid.empty() ? 1 : request.grid.size();
    }
  };

  void dispatch_loop();
  std::shared_ptr<job_record> take_next_locked();
  void run_job(job_record& job);
  void run_job_points(job_record& job);
  void finish_job(job_record& job);

  result_store& store_;
  unsigned worker_threads_ = 0;
  std::size_t max_queued_ = 0;  // 0 = unbounded

  mutable std::mutex mutex_;
  std::condition_variable wake_;      // dispatcher: work arrived / unpaused
  std::condition_variable settled_;   // drain(): a job reached terminal state
  std::map<std::uint64_t, std::shared_ptr<job_record>> jobs_;
  std::vector<std::uint64_t> pending_;  // submission order; filtered on take
  std::uint64_t next_id_ = 1;
  bool paused_ = false;
  bool shutdown_ = false;
  bool running_ = false;  // a job is currently executing

  std::thread dispatcher_;
};

}  // namespace sgl::service
