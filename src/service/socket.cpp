#include "service/socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/failpoint.h"

namespace sgl::service {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error{"socket path too long (" + std::to_string(path.size()) +
                             " bytes, limit " + std::to_string(sizeof(address.sun_path) - 1) +
                             "): " + path};
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

unix_fd& unix_fd::operator=(unix_fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void unix_fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

unix_fd unix_listen(const std::string& path) {
  const sockaddr_un address = make_address(path);
  unix_fd fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) fail("socket");
  // A previous daemon that crashed leaves its socket file behind; bind()
  // would fail with EADDRINUSE even though nobody is listening.  The
  // daemon owns its socket path, so replacing the file is always right.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    fail("bind '" + path + "'");
  }
  if (::listen(fd.get(), 16) != 0) fail("listen '" + path + "'");
  return fd;
}

unix_fd unix_accept(const unix_fd& listener) {
  if (failpoints::check("socket.accept")) return unix_fd{};
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  return unix_fd{fd};  // invalid on error; caller treats as "try again / stop"
}

unix_fd unix_accept_interruptible(const unix_fd& listener, int timeout_ms) {
  pollfd waiter{};
  waiter.fd = listener.get();
  waiter.events = POLLIN;
  const int ready = ::poll(&waiter, 1, timeout_ms);
  if (ready <= 0) return unix_fd{};  // timeout, EINTR: let the caller poll its flag
  return unix_accept(listener);
}

unix_fd unix_connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  if (failpoints::check("socket.connect")) {
    throw std::runtime_error{"connect '" + path + "': injected fail point 'socket.connect'"};
  }
  unix_fd fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) fail("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    fail("connect '" + path + "' (is sociolearnd running?)");
  }
  return fd;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    if (failpoints::check("socket.write_fail")) return false;
    std::size_t attempt = data.size();
    if (const auto cap = failpoints::check("socket.write_short")) {
      // Simulated partial write: the kernel took only `arg` bytes (a full
      // send buffer); the loop must finish the job on the next pass.
      const std::size_t limit = *cap == 0 ? 1 : static_cast<std::size_t>(*cap);
      if (limit < attempt) attempt = limit;
    }
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, data.data(), attempt, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data(), attempt);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::optional<std::string> line_reader::next_line(int fd) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(pos_, newline - pos_);
      pos_ = newline + 1;
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      if (line.size() > max_line_) {
        throw std::runtime_error{"line too long (" + std::to_string(line.size()) +
                                 " bytes, limit " + std::to_string(max_line_) + ")"};
      }
      return line;
    }
    // The unterminated tail is all one pending line; cap it *before* the
    // newline arrives so a peer streaming garbage can't balloon buffer_.
    if (buffer_.size() - pos_ > max_line_) {
      throw std::runtime_error{"line too long (over " + std::to_string(max_line_) +
                               " bytes without a newline)"};
    }
    if (eof_) {
      if (pos_ < buffer_.size()) {
        std::string line = buffer_.substr(pos_);
        buffer_.clear();
        pos_ = 0;
        return line;
      }
      return std::nullopt;
    }
    if (failpoints::check("socket.read_eintr")) continue;  // as if EINTR restarted us
    if (failpoints::check("socket.read_fail")) {
      throw std::runtime_error{"read: injected fail point 'socket.read_fail'"};
    }
    char chunk[4096];
    std::size_t want = sizeof(chunk);
    if (const auto cap = failpoints::check("socket.read_short")) {
      const std::size_t limit = *cap == 0 ? 1 : static_cast<std::size_t>(*cap);
      if (limit < want) want = limit;  // dribble bytes in; reassembly must still work
    }
    const ssize_t n = ::read(fd, chunk, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error{std::string{"read: "} + std::strerror(errno)};
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace sgl::service
