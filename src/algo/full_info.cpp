#include "algo/full_info.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgl::algo {

// --- hedge ------------------------------------------------------------------

hedge::hedge(std::size_t num_options, double rate) : rate_{rate} {
  if (num_options == 0) throw std::invalid_argument{"hedge: no options"};
  if (!(rate > 0.0)) throw std::invalid_argument{"hedge: rate must be positive"};
  log_weights_.assign(num_options, 0.0);
  dist_.assign(num_options, 1.0 / static_cast<double>(num_options));
}

void hedge::update(std::span<const std::uint8_t> rewards) {
  if (rewards.size() != log_weights_.size()) {
    throw std::invalid_argument{"hedge: reward width mismatch"};
  }
  for (std::size_t j = 0; j < rewards.size(); ++j) {
    log_weights_[j] += rate_ * static_cast<double>(rewards[j]);
  }
  refresh_distribution();
}

void hedge::reset() {
  std::fill(log_weights_.begin(), log_weights_.end(), 0.0);
  std::fill(dist_.begin(), dist_.end(), 1.0 / static_cast<double>(dist_.size()));
}

void hedge::refresh_distribution() noexcept {
  const double peak = *std::max_element(log_weights_.begin(), log_weights_.end());
  double total = 0.0;
  for (std::size_t j = 0; j < log_weights_.size(); ++j) {
    dist_[j] = std::exp(log_weights_[j] - peak);
    total += dist_[j];
  }
  for (double& p : dist_) p /= total;
}

double hedge_optimal_rate(std::size_t num_options, std::uint64_t horizon) {
  if (num_options < 2 || horizon == 0) {
    throw std::invalid_argument{"hedge_optimal_rate: need m >= 2 and T >= 1"};
  }
  return std::sqrt(8.0 * std::log(static_cast<double>(num_options)) /
                   static_cast<double>(horizon));
}

// --- follow_the_leader --------------------------------------------------------

follow_the_leader::follow_the_leader(std::size_t num_options) {
  if (num_options == 0) throw std::invalid_argument{"follow_the_leader: no options"};
  cumulative_.assign(num_options, 0);
  dist_.assign(num_options, 1.0 / static_cast<double>(num_options));
}

void follow_the_leader::update(std::span<const std::uint8_t> rewards) {
  if (rewards.size() != cumulative_.size()) {
    throw std::invalid_argument{"follow_the_leader: reward width mismatch"};
  }
  for (std::size_t j = 0; j < rewards.size(); ++j) cumulative_[j] += rewards[j];
  const std::size_t leader = static_cast<std::size_t>(
      std::max_element(cumulative_.begin(), cumulative_.end()) - cumulative_.begin());
  std::fill(dist_.begin(), dist_.end(), 0.0);
  dist_[leader] = 1.0;
}

void follow_the_leader::reset() {
  std::fill(cumulative_.begin(), cumulative_.end(), 0);
  std::fill(dist_.begin(), dist_.end(), 1.0 / static_cast<double>(dist_.size()));
}

// --- uniform_policy -----------------------------------------------------------

uniform_policy::uniform_policy(std::size_t num_options) {
  if (num_options == 0) throw std::invalid_argument{"uniform_policy: no options"};
  dist_.assign(num_options, 1.0 / static_cast<double>(num_options));
}

void uniform_policy::update(std::span<const std::uint8_t> rewards) {
  if (rewards.size() != dist_.size()) {
    throw std::invalid_argument{"uniform_policy: reward width mismatch"};
  }
}

// --- replicator_map -----------------------------------------------------------

replicator_map::replicator_map(std::vector<double> etas) : etas_{std::move(etas)} {
  if (etas_.empty()) throw std::invalid_argument{"replicator_map: no options"};
  double peak = 0.0;
  for (const double eta : etas_) {
    if (!(eta >= 0.0 && eta <= 1.0)) {
      throw std::invalid_argument{"replicator_map: eta outside [0,1]"};
    }
    peak = std::max(peak, eta);
  }
  if (peak <= 0.0) throw std::invalid_argument{"replicator_map: all qualities zero"};
  reset();
}

void replicator_map::step() {
  double total = 0.0;
  for (std::size_t j = 0; j < state_.size(); ++j) {
    state_[j] *= etas_[j];
    total += state_[j];
  }
  if (total <= 0.0) {
    // All surviving mass sat on zero-quality options; the map is undefined —
    // restart from uniform (mirrors the empty-population rule of the finite
    // dynamics).
    reset();
    return;
  }
  for (double& x : state_) x /= total;
}

void replicator_map::reset() {
  state_.assign(etas_.size(), 1.0 / static_cast<double>(etas_.size()));
}

}  // namespace sgl::algo
