#pragma once

/// \file exp3.h
/// EXP3 (Auer et al.): multiplicative weights under *bandit* feedback.
///
/// Thematically the exact individual-level counterpart of the paper's
/// group-level result: one agent with bandit feedback must run MWU on
/// importance-weighted reward estimates and pays the √m price, while the
/// population as a whole gets full-information MWU for free.  Used by
/// experiment E10 as the "what if each individual ran MWU alone" column.

#include <cstdint>
#include <vector>

#include "algo/bandit.h"
#include "support/rng.h"

namespace sgl::algo {

class exp3 final : public bandit_policy {
 public:
  /// `gamma` in (0, 1]: exploration mix and estimate scale.  The classic
  /// horizon tuning is gamma = min(1, √(m ln m / ((e−1) T))).
  exp3(std::size_t num_arms, double gamma);

  [[nodiscard]] std::size_t num_arms() const noexcept override { return dist_.size(); }
  [[nodiscard]] std::size_t select(rng& gen) override;
  void update(std::size_t arm, std::uint8_t reward) override;
  void reset() override;

  /// The sampling distribution used for the most recent select().
  [[nodiscard]] const std::vector<double>& distribution() const noexcept { return dist_; }

 private:
  void refresh() noexcept;

  double gamma_;
  std::vector<double> log_weights_;
  std::vector<double> dist_;
};

/// The horizon-optimal gamma for m arms over T steps.
[[nodiscard]] double exp3_optimal_gamma(std::size_t num_arms, std::uint64_t horizon);

}  // namespace sgl::algo
