#include "algo/exp3.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::algo {

exp3::exp3(std::size_t num_arms, double gamma) : gamma_{gamma} {
  if (num_arms == 0) throw std::invalid_argument{"exp3: no arms"};
  if (!(gamma > 0.0 && gamma <= 1.0)) {
    throw std::invalid_argument{"exp3: gamma must be in (0,1]"};
  }
  log_weights_.assign(num_arms, 0.0);
  dist_.assign(num_arms, 1.0 / static_cast<double>(num_arms));
}

void exp3::refresh() noexcept {
  const double m = static_cast<double>(dist_.size());
  const double peak = *std::max_element(log_weights_.begin(), log_weights_.end());
  double total = 0.0;
  for (std::size_t j = 0; j < dist_.size(); ++j) {
    dist_[j] = std::exp(log_weights_[j] - peak);
    total += dist_[j];
  }
  for (double& p : dist_) p = (1.0 - gamma_) * (p / total) + gamma_ / m;
}

std::size_t exp3::select(rng& gen) {
  refresh();
  return sample_categorical(gen, dist_);
}

void exp3::update(std::size_t arm, std::uint8_t reward) {
  if (arm >= dist_.size()) throw std::out_of_range{"exp3: arm out of range"};
  if (reward == 0) return;  // zero estimated reward leaves weights unchanged
  // Importance-weighted estimate r̂ = r / p_arm, scaled by gamma/m.
  const double p = dist_[arm];
  log_weights_[arm] +=
      gamma_ / static_cast<double>(dist_.size()) * (1.0 / std::max(p, 1e-12));
}

void exp3::reset() {
  std::fill(log_weights_.begin(), log_weights_.end(), 0.0);
  std::fill(dist_.begin(), dist_.end(), 1.0 / static_cast<double>(dist_.size()));
}

double exp3_optimal_gamma(std::size_t num_arms, std::uint64_t horizon) {
  if (num_arms < 2 || horizon == 0) {
    throw std::invalid_argument{"exp3_optimal_gamma: need m >= 2 and T >= 1"};
  }
  const double m = static_cast<double>(num_arms);
  return std::min(1.0, std::sqrt(m * std::log(m) /
                                 ((std::numbers::e - 1.0) *
                                  static_cast<double>(horizon))));
}

}  // namespace sgl::algo
