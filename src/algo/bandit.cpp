#include "algo/bandit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::algo {
namespace {

void check_arms(std::size_t num_arms, const char* who) {
  if (num_arms == 0) throw std::invalid_argument{std::string{who} + ": no arms"};
}

void check_arm_index(std::size_t arm, std::size_t num_arms, const char* who) {
  if (arm >= num_arms) throw std::out_of_range{std::string{who} + ": arm out of range"};
}

}  // namespace

// --- ucb1 -------------------------------------------------------------------

ucb1::ucb1(std::size_t num_arms) {
  check_arms(num_arms, "ucb1");
  pulls_.assign(num_arms, 0);
  wins_.assign(num_arms, 0);
}

std::size_t ucb1::select(rng& /*gen*/) {
  // Initialization round: play each unpulled arm once, in index order.
  for (std::size_t j = 0; j < pulls_.size(); ++j) {
    if (pulls_[j] == 0) return j;
  }
  std::size_t best = 0;
  double best_score = -1.0;
  const double log_t = std::log(static_cast<double>(total_pulls_));
  for (std::size_t j = 0; j < pulls_.size(); ++j) {
    const double n = static_cast<double>(pulls_[j]);
    const double score = static_cast<double>(wins_[j]) / n + std::sqrt(2.0 * log_t / n);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

void ucb1::update(std::size_t arm, std::uint8_t reward) {
  check_arm_index(arm, pulls_.size(), "ucb1");
  ++pulls_[arm];
  ++total_pulls_;
  wins_[arm] += reward;
}

void ucb1::reset() {
  std::fill(pulls_.begin(), pulls_.end(), 0);
  std::fill(wins_.begin(), wins_.end(), 0);
  total_pulls_ = 0;
}

// --- thompson_sampling --------------------------------------------------------

thompson_sampling::thompson_sampling(std::size_t num_arms) {
  check_arms(num_arms, "thompson_sampling");
  wins_.assign(num_arms, 0);
  losses_.assign(num_arms, 0);
}

std::size_t thompson_sampling::select(rng& gen) {
  std::size_t best = 0;
  double best_draw = -1.0;
  for (std::size_t j = 0; j < wins_.size(); ++j) {
    const double draw = sample_beta(gen, 1.0 + static_cast<double>(wins_[j]),
                                    1.0 + static_cast<double>(losses_[j]));
    if (draw > best_draw) {
      best_draw = draw;
      best = j;
    }
  }
  return best;
}

void thompson_sampling::update(std::size_t arm, std::uint8_t reward) {
  check_arm_index(arm, wins_.size(), "thompson_sampling");
  if (reward != 0) {
    ++wins_[arm];
  } else {
    ++losses_[arm];
  }
}

void thompson_sampling::reset() {
  std::fill(wins_.begin(), wins_.end(), 0);
  std::fill(losses_.begin(), losses_.end(), 0);
}

// --- epsilon_greedy -----------------------------------------------------------

epsilon_greedy::epsilon_greedy(std::size_t num_arms, double epsilon) : epsilon_{epsilon} {
  check_arms(num_arms, "epsilon_greedy");
  if (!(epsilon >= 0.0 && epsilon <= 1.0)) {
    throw std::invalid_argument{"epsilon_greedy: epsilon outside [0,1]"};
  }
  pulls_.assign(num_arms, 0);
  wins_.assign(num_arms, 0);
}

std::size_t epsilon_greedy::select(rng& gen) {
  if (gen.next_bernoulli(epsilon_)) {
    return static_cast<std::size_t>(gen.next_below(pulls_.size()));
  }
  std::size_t best = 0;
  double best_mean = -1.0;
  for (std::size_t j = 0; j < pulls_.size(); ++j) {
    // Unpulled arms are optimistic (mean 1) so everything gets tried.
    const double mean = pulls_[j] == 0 ? 1.0
                                       : static_cast<double>(wins_[j]) /
                                             static_cast<double>(pulls_[j]);
    if (mean > best_mean) {
      best_mean = mean;
      best = j;
    }
  }
  return best;
}

void epsilon_greedy::update(std::size_t arm, std::uint8_t reward) {
  check_arm_index(arm, pulls_.size(), "epsilon_greedy");
  ++pulls_[arm];
  wins_[arm] += reward;
}

void epsilon_greedy::reset() {
  std::fill(pulls_.begin(), pulls_.end(), 0);
  std::fill(wins_.begin(), wins_.end(), 0);
}

// --- random_bandit ------------------------------------------------------------

random_bandit::random_bandit(std::size_t num_arms) : arms_{num_arms} {
  check_arms(num_arms, "random_bandit");
}

std::size_t random_bandit::select(rng& gen) {
  return static_cast<std::size_t>(gen.next_below(arms_));
}

void random_bandit::update(std::size_t arm, std::uint8_t /*reward*/) {
  check_arm_index(arm, arms_, "random_bandit");
}

}  // namespace sgl::algo
