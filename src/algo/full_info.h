#pragma once

/// \file full_info.h
/// Full-information baselines.  The paper's key observation is that the
/// *population as a whole* plays a full-information game (every signal R^t_j
/// is realized and, collectively, observed), so the natural yardsticks are
/// the classic multiplicative-weights/Hedge family (Arora–Hazan–Kale) that
/// the infinite-population dynamics approximates, including the optimally
/// tuned learning rate the paper's conclusion mentions
/// (regret O(√(ln m / T))).

#include <cstdint>
#include <span>
#include <vector>

namespace sgl::algo {

/// A policy that observes the full reward vector after each step.
class full_info_policy {
 public:
  virtual ~full_info_policy() = default;

  [[nodiscard]] virtual std::size_t num_options() const noexcept = 0;

  /// The distribution the policy plays *this* step (before rewards arrive).
  [[nodiscard]] virtual std::span<const double> distribution() const noexcept = 0;

  /// Observes the realized reward vector of this step.
  virtual void update(std::span<const std::uint8_t> rewards) = 0;

  /// Back to the initial state.
  virtual void reset() = 0;
};

/// Hedge / classic MWU: weights w_j ∝ exp(rate · cumulative_reward_j),
/// maintained in log space so arbitrarily long horizons cannot underflow.
class hedge final : public full_info_policy {
 public:
  /// Throws std::invalid_argument unless num_options >= 1 and rate > 0.
  hedge(std::size_t num_options, double rate);

  [[nodiscard]] std::size_t num_options() const noexcept override { return dist_.size(); }
  [[nodiscard]] std::span<const double> distribution() const noexcept override { return dist_; }
  void update(std::span<const std::uint8_t> rewards) override;
  void reset() override;

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  void refresh_distribution() noexcept;

  double rate_;
  std::vector<double> log_weights_;
  std::vector<double> dist_;
};

/// The horizon-tuned Hedge learning rate √(8 ln m / T), giving average
/// regret ≤ √(ln m / (2T)).
[[nodiscard]] double hedge_optimal_rate(std::size_t num_options, std::uint64_t horizon);

/// Follow-the-leader: plays the option with the highest cumulative reward
/// (ties to the lowest index).
class follow_the_leader final : public full_info_policy {
 public:
  explicit follow_the_leader(std::size_t num_options);

  [[nodiscard]] std::size_t num_options() const noexcept override { return dist_.size(); }
  [[nodiscard]] std::span<const double> distribution() const noexcept override { return dist_; }
  void update(std::span<const std::uint8_t> rewards) override;
  void reset() override;

 private:
  std::vector<std::uint64_t> cumulative_;
  std::vector<double> dist_;
};

/// Plays uniformly at random forever — the no-learning control.
class uniform_policy final : public full_info_policy {
 public:
  explicit uniform_policy(std::size_t num_options);

  [[nodiscard]] std::size_t num_options() const noexcept override { return dist_.size(); }
  [[nodiscard]] std::span<const double> distribution() const noexcept override { return dist_; }
  void update(std::span<const std::uint8_t> rewards) override;
  void reset() override {}

 private:
  std::vector<double> dist_;
};

/// The deterministic replicator map x_j ← x_j η_j / Σ_k x_k η_k — the
/// noise-free, infinite-population limit the paper's related work compares
/// against (§3).  Operates directly on the expected qualities.
class replicator_map {
 public:
  /// Throws std::invalid_argument unless etas are in [0,1] with a positive
  /// maximum.
  explicit replicator_map(std::vector<double> etas);

  void step();
  void reset();

  [[nodiscard]] std::span<const double> state() const noexcept { return state_; }
  [[nodiscard]] std::size_t num_options() const noexcept { return etas_.size(); }

 private:
  std::vector<double> etas_;
  std::vector<double> state_;
};

}  // namespace sgl::algo
