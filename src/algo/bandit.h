#pragma once

/// \file bandit.h
/// Single-agent stochastic-bandit baselines.  The paper's closing
/// observation (§6): an *individual* in the group faces a multi-armed
/// bandit, while the *group* collectively enjoys full information.
/// Experiment E10 quantifies that contrast by pitting the social dynamics
/// against a population of independent bandit learners.

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace sgl::algo {

/// A policy that pulls one arm per step and sees only that arm's reward.
class bandit_policy {
 public:
  virtual ~bandit_policy() = default;

  [[nodiscard]] virtual std::size_t num_arms() const noexcept = 0;

  /// Chooses the arm to pull this step.
  [[nodiscard]] virtual std::size_t select(rng& gen) = 0;

  /// Observes the pulled arm's reward.
  virtual void update(std::size_t arm, std::uint8_t reward) = 0;

  virtual void reset() = 0;
};

/// UCB1 (Auer–Cesa-Bianchi–Fischer): each arm once, then
/// argmax mean_j + √(2 ln t / pulls_j).
class ucb1 final : public bandit_policy {
 public:
  explicit ucb1(std::size_t num_arms);

  [[nodiscard]] std::size_t num_arms() const noexcept override { return pulls_.size(); }
  [[nodiscard]] std::size_t select(rng& gen) override;
  void update(std::size_t arm, std::uint8_t reward) override;
  void reset() override;

 private:
  std::vector<std::uint64_t> pulls_;
  std::vector<std::uint64_t> wins_;
  std::uint64_t total_pulls_ = 0;
};

/// Thompson sampling with a Beta(1,1) prior per arm.
class thompson_sampling final : public bandit_policy {
 public:
  explicit thompson_sampling(std::size_t num_arms);

  [[nodiscard]] std::size_t num_arms() const noexcept override { return wins_.size(); }
  [[nodiscard]] std::size_t select(rng& gen) override;
  void update(std::size_t arm, std::uint8_t reward) override;
  void reset() override;

 private:
  std::vector<std::uint64_t> wins_;
  std::vector<std::uint64_t> losses_;
};

/// ε-greedy with a fixed exploration probability.
class epsilon_greedy final : public bandit_policy {
 public:
  /// Throws std::invalid_argument unless epsilon is in [0, 1].
  epsilon_greedy(std::size_t num_arms, double epsilon);

  [[nodiscard]] std::size_t num_arms() const noexcept override { return pulls_.size(); }
  [[nodiscard]] std::size_t select(rng& gen) override;
  void update(std::size_t arm, std::uint8_t reward) override;
  void reset() override;

 private:
  double epsilon_;
  std::vector<std::uint64_t> pulls_;
  std::vector<std::uint64_t> wins_;
};

/// Pulls uniformly at random — the floor any learner must beat.
class random_bandit final : public bandit_policy {
 public:
  explicit random_bandit(std::size_t num_arms);

  [[nodiscard]] std::size_t num_arms() const noexcept override { return arms_; }
  [[nodiscard]] std::size_t select(rng& gen) override;
  void update(std::size_t arm, std::uint8_t reward) override;
  void reset() override {}

 private:
  std::size_t arms_;
};

}  // namespace sgl::algo
