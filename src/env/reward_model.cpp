#include "env/reward_model.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::env {
namespace {

void validate_etas(std::span<const double> etas, const char* who) {
  if (etas.empty()) throw std::invalid_argument{std::string{who} + ": no options"};
  for (const double eta : etas) {
    if (!(eta >= 0.0 && eta <= 1.0)) {
      throw std::invalid_argument{std::string{who} + ": quality outside [0,1]"};
    }
  }
}

}  // namespace

std::size_t reward_model::best_option(std::uint64_t t) const {
  std::size_t best = 0;
  double best_eta = mean(t, 0);
  for (std::size_t j = 1; j < num_options(); ++j) {
    const double eta = mean(t, j);
    if (eta > best_eta) {
      best_eta = eta;
      best = j;
    }
  }
  return best;
}

double reward_model::best_mean(std::uint64_t t) const { return mean(t, best_option(t)); }

// --- bernoulli_rewards ------------------------------------------------------

bernoulli_rewards::bernoulli_rewards(std::vector<double> etas) : etas_{std::move(etas)} {
  validate_etas(etas_, "bernoulli_rewards");
}

void bernoulli_rewards::sample(std::uint64_t /*t*/, rng& gen, std::span<std::uint8_t> out) {
  for (std::size_t j = 0; j < etas_.size(); ++j) {
    out[j] = gen.next_bernoulli(etas_[j]) ? 1 : 0;
  }
}

double bernoulli_rewards::mean(std::uint64_t /*t*/, std::size_t option) const {
  return etas_.at(option);
}

// --- exclusive_rewards ------------------------------------------------------

exclusive_rewards::exclusive_rewards(std::vector<double> win_probabilities)
    : p_{std::move(win_probabilities)} {
  validate_etas(p_, "exclusive_rewards");
  const double total = std::accumulate(p_.begin(), p_.end(), 0.0);
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument{"exclusive_rewards: win probabilities must sum to 1"};
  }
}

void exclusive_rewards::sample(std::uint64_t /*t*/, rng& gen, std::span<std::uint8_t> out) {
  const std::size_t winner = sample_categorical(gen, p_);
  for (std::size_t j = 0; j < p_.size(); ++j) out[j] = (j == winner) ? 1 : 0;
}

double exclusive_rewards::mean(std::uint64_t /*t*/, std::size_t option) const {
  return p_.at(option);
}

// --- switching_rewards ------------------------------------------------------

switching_rewards::switching_rewards(std::vector<double> base_etas, std::uint64_t period)
    : base_{std::move(base_etas)}, period_{period} {
  validate_etas(base_, "switching_rewards");
  if (period_ == 0) throw std::invalid_argument{"switching_rewards: period must be positive"};
}

void switching_rewards::sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) {
  for (std::size_t j = 0; j < base_.size(); ++j) {
    out[j] = gen.next_bernoulli(mean(t, j)) ? 1 : 0;
  }
}

double switching_rewards::mean(std::uint64_t t, std::size_t option) const {
  const std::size_t m = base_.size();
  const std::uint64_t shift = (t / period_) % m;
  return base_[(option + static_cast<std::size_t>(shift)) % m];
}

// --- drifting_rewards -------------------------------------------------------

drifting_rewards::drifting_rewards(std::vector<double> start_etas,
                                   std::vector<double> end_etas, std::uint64_t horizon)
    : start_{std::move(start_etas)}, end_{std::move(end_etas)}, horizon_{horizon} {
  validate_etas(start_, "drifting_rewards");
  validate_etas(end_, "drifting_rewards");
  if (start_.size() != end_.size()) {
    throw std::invalid_argument{"drifting_rewards: start/end size mismatch"};
  }
  if (horizon_ < 2) throw std::invalid_argument{"drifting_rewards: horizon must be >= 2"};
}

void drifting_rewards::sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) {
  for (std::size_t j = 0; j < start_.size(); ++j) {
    out[j] = gen.next_bernoulli(mean(t, j)) ? 1 : 0;
  }
}

double drifting_rewards::mean(std::uint64_t t, std::size_t option) const {
  if (t <= 1) return start_.at(option);
  if (t >= horizon_) return end_.at(option);
  const double frac = static_cast<double>(t - 1) / static_cast<double>(horizon_ - 1);
  return start_.at(option) + frac * (end_.at(option) - start_.at(option));
}

// --- schedule_rewards -------------------------------------------------------

schedule_rewards::schedule_rewards(std::vector<std::vector<std::uint8_t>> table)
    : table_{std::move(table)} {
  if (table_.empty()) throw std::invalid_argument{"schedule_rewards: empty table"};
  width_ = table_[0].size();
  if (width_ == 0) throw std::invalid_argument{"schedule_rewards: zero-width rows"};
  for (const auto& row : table_) {
    if (row.size() != width_) {
      throw std::invalid_argument{"schedule_rewards: ragged rows"};
    }
    for (const std::uint8_t v : row) {
      if (v > 1) throw std::invalid_argument{"schedule_rewards: signals must be 0/1"};
    }
  }
}

void schedule_rewards::sample(std::uint64_t t, rng& /*gen*/, std::span<std::uint8_t> out) {
  const auto& row = table_[(t == 0 ? 0 : (t - 1)) % table_.size()];
  for (std::size_t j = 0; j < width_; ++j) out[j] = row[j];
}

double schedule_rewards::mean(std::uint64_t /*t*/, std::size_t option) const {
  double total = 0.0;
  for (const auto& row : table_) total += row.at(option);
  return total / static_cast<double>(table_.size());
}

// --- helpers ----------------------------------------------------------------

std::vector<double> two_level_etas(std::size_t num_options, double eta_best, double eta_rest) {
  if (num_options == 0) throw std::invalid_argument{"two_level_etas: no options"};
  std::vector<double> etas(num_options, eta_rest);
  etas[0] = eta_best;
  validate_etas(etas, "two_level_etas");
  return etas;
}

}  // namespace sgl::env
