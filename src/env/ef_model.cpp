#include "env/ef_model.h"

#include <cmath>
#include <functional>
#include <numbers>
#include <stdexcept>

#include "support/distributions.h"
#include "support/stats.h"

namespace sgl::env {
namespace {

/// Adaptive Simpson quadrature on [a, b].
double adaptive_simpson(const std::function<double(double)>& f, double a, double b,
                        double fa, double fm, double fb, double whole, double tolerance,
                        int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson(f, a, m, fa, flm, fm, left, tolerance / 2.0, depth - 1) +
         adaptive_simpson(f, m, b, fm, frm, fb, right, tolerance / 2.0, depth - 1);
}

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tolerance = 1e-10) {
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return adaptive_simpson(f, a, b, fa, fm, fb, whole, tolerance, 40);
}

double normal_pdf(double x, double mean, double sd) {
  const double z = (x - mean) / sd;
  return std::exp(-0.5 * z * z) / (sd * std::sqrt(2.0 * std::numbers::pi));
}

}  // namespace

void ef_params::validate() const {
  if (!(reward_sd > 0.0)) throw std::invalid_argument{"ef_params: reward_sd must be > 0"};
  if (!(shock_sd > 0.0)) throw std::invalid_argument{"ef_params: shock_sd must be > 0"};
  if (!(mean1 > mean2)) throw std::invalid_argument{"ef_params: option 1 must be better"};
}

double ef_win_probability(const ef_params& params) {
  params.validate();
  // D = r1 - r2 ~ Normal(mean1 - mean2, 2 * reward_sd^2).
  const double diff_sd = params.reward_sd * std::numbers::sqrt2;
  return normal_cdf((params.mean1 - params.mean2) / diff_sd);
}

ef_reduction reduce_ef_model(const ef_params& params) {
  params.validate();
  const double diff_mean = params.mean1 - params.mean2;
  const double diff_sd = params.reward_sd * std::numbers::sqrt2;
  const double xi_sd = 2.0 * params.shock_sd;  // ξ ~ Normal(0, 4 shock_sd^2)

  // beta = E[ P(ξ > -D) | D > 0 ] = ∫_0^∞ φ_D(x) Φ(x/ξ_sd) dx / P(D > 0),
  // alpha = E[ P(ξ >  D') | D' > 0 ] with D' = r2 - r1, by symmetry
  //       = ∫_0^∞ φ_{-D}(x) Φ(-x/ξ_sd) dx / P(D < 0).
  const double span = 10.0 * diff_sd + std::abs(diff_mean);

  const auto beta_integrand = [&](double x) {
    return normal_pdf(x, diff_mean, diff_sd) * normal_cdf(x / xi_sd);
  };
  const auto alpha_integrand = [&](double x) {
    return normal_pdf(-x, diff_mean, diff_sd) * normal_cdf(-x / xi_sd);
  };

  const double p = ef_win_probability(params);
  ef_reduction reduced;
  reduced.eta1 = p;
  reduced.eta2 = 1.0 - p;
  reduced.beta = integrate(beta_integrand, 0.0, span) / p;
  reduced.alpha = integrate(alpha_integrand, 0.0, span) / (1.0 - p);
  return reduced;
}

ef_direct_dynamics::ef_direct_dynamics(const ef_params& params, std::size_t num_agents,
                                       double mu)
    : params_{params},
      num_agents_{num_agents},
      mu_{mu},
      popularity_(2, 0.5),
      last_rewards_(2, 0.0) {
  params_.validate();
  if (num_agents_ == 0) throw std::invalid_argument{"ef_direct_dynamics: no agents"};
  if (!(mu_ >= 0.0 && mu_ <= 1.0)) {
    throw std::invalid_argument{"ef_direct_dynamics: mu outside [0,1]"};
  }
}

void ef_direct_dynamics::step(rng& reward_gen, rng& population_gen) {
  // One shared continuous reward draw per option per step.
  last_rewards_[0] = sample_normal(reward_gen, params_.mean1, params_.reward_sd);
  last_rewards_[1] = sample_normal(reward_gen, params_.mean2, params_.reward_sd);

  const double xi_sd = 2.0 * params_.shock_sd;
  // P[adopt option j | considered j] = P[r_j + ε + ε' > r_k + ε + ε']
  //                                  = Φ((r_j − r_k) / ξ_sd).
  const double adopt1 = normal_cdf((last_rewards_[0] - last_rewards_[1]) / xi_sd);
  const double adopt_probability[2] = {adopt1, 1.0 - adopt1};

  std::uint64_t committed[2] = {0, 0};
  for (std::size_t i = 0; i < num_agents_; ++i) {
    std::size_t considered;
    if (population_gen.next_bernoulli(mu_)) {
      considered = static_cast<std::size_t>(population_gen.next_below(2));
    } else {
      considered = population_gen.next_bernoulli(popularity_[0]) ? 0 : 1;
    }
    if (population_gen.next_bernoulli(adopt_probability[considered])) {
      ++committed[considered];
    }
  }

  adopters_ = committed[0] + committed[1];
  if (adopters_ == 0) {
    popularity_[0] = 0.5;
    popularity_[1] = 0.5;
  } else {
    popularity_[0] = static_cast<double>(committed[0]) / static_cast<double>(adopters_);
    popularity_[1] = 1.0 - popularity_[0];
  }
  ++steps_;
}

}  // namespace sgl::env
