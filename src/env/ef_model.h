#pragma once

/// \file ef_model.h
/// The Ellison–Fudenberg word-of-mouth instantiation (§2.1, example 2).
///
/// Two options with continuous rewards r^t_j ~ Normal(mean_j, sd_j), plus
/// i.i.d. player-specific shocks ε ~ Normal(0, shock_sd).  A player who
/// sampled a companion compares the shocked rewards of the two options and
/// adopts the sampled option iff the comparison favours it.
///
/// The paper converts this to the binary framework:
///   R^t_1 = 1{r^t_1 > r^t_2},  η₁ = p = P[r₁ > r₂],  η₂ = 1 − p,
///   β = P[ξ > r₂ − r₁ | r₁ > r₂],   α = P[ξ > r₂ − r₁ | r₂ > r₁],
/// where ξ = ε_{i1} + ε_{i'1} − ε_{i2} − ε_{i'2} ~ Normal(0, 4·shock_sd²).
/// We compute p in closed form and (α, β) by numerically integrating the
/// conditional orthant probability, so experiment E13 can pit the *direct*
/// shock-level simulation against the *reduced* (η, α, β) binary dynamics.

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace sgl::env {

/// Parameters of the Ellison–Fudenberg environment.
struct ef_params {
  double mean1 = 0.6;    ///< mean reward of option 1 (the better one)
  double mean2 = 0.4;    ///< mean reward of option 2
  double reward_sd = 0.3;  ///< std-dev of each option's reward draw
  double shock_sd = 0.2;   ///< std-dev of each player-specific shock ε

  /// Throws std::invalid_argument on non-positive deviations.
  void validate() const;
};

/// Closed form p = P[r₁ > r₂] = Φ((mean1 − mean2) / √(2)·reward_sd).
[[nodiscard]] double ef_win_probability(const ef_params& params);

/// The reduced adoption parameters of the paper's conversion.
struct ef_reduction {
  double eta1 = 0.0;   ///< p
  double eta2 = 0.0;   ///< 1 − p
  double alpha = 0.0;  ///< adopt probability on a bad signal
  double beta = 0.0;   ///< adopt probability on a good signal
};

/// Computes (η₁, η₂, α, β) by adaptive Simpson integration of
/// E[Φ(D / (2·shock_sd)) | ±D > 0] where D = r₁ − r₂.
[[nodiscard]] ef_reduction reduce_ef_model(const ef_params& params);

/// Direct agent-based simulation of the EF dynamics embedded in the paper's
/// two-stage framework: each player samples an option proportional to
/// popularity (with exploration weight mu), then adopts the sampled option
/// with probability Φ((r_sampled − r_other)/(2·shock_sd)) — i.e. the
/// probability that the four-shock comparison favours it — and sits out
/// otherwise.  Conditioned on the sign of r₁−r₂ this adoption probability
/// has expectation exactly β (resp. α), which is what the reduction asserts.
class ef_direct_dynamics {
 public:
  /// Population of `num_agents`; `mu` as in the base model (EF itself has
  /// mu = 0 but exploration is allowed).
  ef_direct_dynamics(const ef_params& params, std::size_t num_agents, double mu);

  /// Advances one step; draws (r₁, r₂) internally from `reward_gen` so a
  /// coupled reduced run can share the same reward stream via the same
  /// generator state, and uses `population_gen` for the per-agent choices.
  void step(rng& reward_gen, rng& population_gen);

  /// Popularity vector Q^t (size 2; uniform before the first step or when
  /// everybody sat out).
  [[nodiscard]] const std::vector<double>& popularity() const noexcept { return popularity_; }

  /// Number of agents committed to an option after the last step.
  [[nodiscard]] std::uint64_t adopters() const noexcept { return adopters_; }

  /// Most recent reward draw (r₁, r₂) — exposed so coupled runs can reuse it.
  [[nodiscard]] double last_reward(std::size_t option) const { return last_rewards_.at(option); }

  /// Steps taken so far.
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  ef_params params_;
  std::size_t num_agents_;
  double mu_;
  std::vector<double> popularity_;
  std::vector<double> last_rewards_;
  std::uint64_t adopters_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace sgl::env
