#pragma once

/// \file markov_rewards.h
/// Regime-switching qualities (§6: "when the parameters controlling the
/// quality of the options are allowed to change ... e.g., when the options
/// represent stocks").
///
/// A hidden Markov chain over K regimes advances once per step; regime k
/// carries its own quality vector η^(k).  So options' qualities move
/// *jointly* — the bull/bear structure real option sets have — unlike the
/// deterministic rotation of switching_rewards.
///
/// To fit the reward_model interface (mean(t, j) must be a function of t),
/// the regime path is pre-drawn at construction from its own seed: the
/// environment is a deterministic non-stationary schedule of Bernoulli
/// parameters, independent of the signal noise drawn at sample() time.

#include <cstdint>
#include <vector>

#include "env/reward_model.h"

namespace sgl::env {

class markov_rewards final : public reward_model {
 public:
  /// `regime_etas[k][j]`: quality of option j in regime k (all in [0,1]).
  /// `transition[k][l]`: probability of moving k→l each step (rows sum
  /// to 1).  The regime path is drawn for `horizon` steps from
  /// `regime_seed` (steps beyond the horizon hold the last regime).
  /// Starts in regime 0.
  markov_rewards(std::vector<std::vector<double>> regime_etas,
                 std::vector<std::vector<double>> transition, std::uint64_t horizon,
                 std::uint64_t regime_seed);

  [[nodiscard]] std::size_t num_options() const noexcept override {
    return regime_etas_[0].size();
  }
  void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) override;
  [[nodiscard]] double mean(std::uint64_t t, std::size_t option) const override;
  [[nodiscard]] bool is_stationary() const noexcept override { return false; }
  /// The regime path is pre-drawn at construction and never mutated.
  [[nodiscard]] bool reusable() const noexcept override { return true; }

  /// Regime active at step t.
  [[nodiscard]] std::size_t regime_at(std::uint64_t t) const;
  [[nodiscard]] std::size_t num_regimes() const noexcept { return regime_etas_.size(); }
  /// Number of regime changes along the pre-drawn path.
  [[nodiscard]] std::uint64_t num_switches() const noexcept { return switches_; }

 private:
  std::vector<std::vector<double>> regime_etas_;
  std::vector<std::uint32_t> path_;  // regime per step, index t-1
  std::uint64_t switches_ = 0;
};

}  // namespace sgl::env
