#include "env/markov_rewards.h"

#include <cmath>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::env {

markov_rewards::markov_rewards(std::vector<std::vector<double>> regime_etas,
                               std::vector<std::vector<double>> transition,
                               std::uint64_t horizon, std::uint64_t regime_seed)
    : regime_etas_{std::move(regime_etas)} {
  if (regime_etas_.empty()) throw std::invalid_argument{"markov_rewards: no regimes"};
  const std::size_t k = regime_etas_.size();
  const std::size_t m = regime_etas_[0].size();
  if (m == 0) throw std::invalid_argument{"markov_rewards: no options"};
  for (const auto& etas : regime_etas_) {
    if (etas.size() != m) throw std::invalid_argument{"markov_rewards: ragged regimes"};
    for (const double eta : etas) {
      if (!(eta >= 0.0 && eta <= 1.0)) {
        throw std::invalid_argument{"markov_rewards: eta outside [0,1]"};
      }
    }
  }
  if (transition.size() != k) {
    throw std::invalid_argument{"markov_rewards: transition rows != regimes"};
  }
  for (const auto& row : transition) {
    if (row.size() != k) {
      throw std::invalid_argument{"markov_rewards: transition not square"};
    }
    double total = 0.0;
    for (const double p : row) {
      if (!(p >= 0.0)) throw std::invalid_argument{"markov_rewards: negative rate"};
      total += p;
    }
    if (std::abs(total - 1.0) > 1e-9) {
      throw std::invalid_argument{"markov_rewards: transition rows must sum to 1"};
    }
  }
  if (horizon == 0) throw std::invalid_argument{"markov_rewards: zero horizon"};

  // Pre-draw the regime path.
  rng gen = rng::from_stream(regime_seed, 0x5eedULL);
  path_.resize(horizon);
  std::uint32_t state = 0;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    path_[t] = state;
    const auto next =
        static_cast<std::uint32_t>(sample_categorical(gen, transition[state]));
    if (next != state) ++switches_;
    state = next;
  }
}

std::size_t markov_rewards::regime_at(std::uint64_t t) const {
  const std::uint64_t index = t == 0 ? 0 : t - 1;
  if (index >= path_.size()) return path_.back();
  return path_[index];
}

void markov_rewards::sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) {
  const auto& etas = regime_etas_[regime_at(t)];
  for (std::size_t j = 0; j < etas.size(); ++j) {
    out[j] = gen.next_bernoulli(etas[j]) ? 1 : 0;
  }
}

double markov_rewards::mean(std::uint64_t t, std::size_t option) const {
  return regime_etas_[regime_at(t)].at(option);
}

}  // namespace sgl::env
