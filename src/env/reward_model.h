#pragma once

/// \file reward_model.h
/// Reward environments: who generates the quality signals R^t_j.
///
/// The paper's base model (§2.1) draws R^t_j ~ Bernoulli(η_j) independently
/// across options and time.  Its examples and future-work section motivate
/// richer generators, all provided here behind one interface:
///   * bernoulli_rewards    — the base model;
///   * exclusive_rewards    — exactly one option good per step (the
///                            Ellison–Fudenberg reduction, §2.1 ex. 2, where
///                            R^t_1 = 1{r^t_1 > r^t_2});
///   * switching_rewards    — the identity of the best option rotates every
///                            L steps (§6: "options represent stocks");
///   * drifting_rewards     — qualities interpolate linearly over time (§6);
///   * schedule_rewards     — a fixed, deterministic signal table, used by
///                            tests and adversarial probes.
///
/// Signals are *shared*: every individual looking at option j at step t sees
/// the same R^t_j, exactly as in the paper.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/rng.h"

namespace sgl::env {

/// Abstract generator of the per-step signal vector R^t.
class reward_model {
 public:
  virtual ~reward_model() = default;

  /// Number of options m.
  [[nodiscard]] virtual std::size_t num_options() const noexcept = 0;

  /// Draws R^t into `out` (size must be num_options()).  `t` is the 1-based
  /// step index of the signals being produced; stationary models ignore it.
  virtual void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) = 0;

  /// η_j(t): the probability that option j is good at step t.
  [[nodiscard]] virtual double mean(std::uint64_t t, std::size_t option) const = 0;

  /// Index of a best option at step t (ties broken towards lower index).
  [[nodiscard]] std::size_t best_option(std::uint64_t t) const;

  /// η of the best option at step t.
  [[nodiscard]] double best_mean(std::uint64_t t) const;

  /// True if mean(t, j) is the same for every t (the theorems' setting).
  [[nodiscard]] virtual bool is_stationary() const noexcept { return true; }

  /// Restores any cross-replication mutable state to its initial value.
  /// Every built-in model is immutable after construction (markov_rewards
  /// pre-draws its regime path), so the default is a no-op.
  virtual void reset() {}

  /// True when the model may be reused across Monte-Carlo replications:
  /// sample()/mean() depend only on (t, gen) and on state reset() restores.
  /// The harness (core/experiment.h) reconstructs non-reusable models every
  /// replication, which is always correct.  All built-ins return true.
  [[nodiscard]] virtual bool reusable() const noexcept { return false; }
};

/// The paper's base model: independent R^t_j ~ Bernoulli(η_j).
class bernoulli_rewards final : public reward_model {
 public:
  /// Throws std::invalid_argument unless every η_j is in [0, 1] and the list
  /// is non-empty.  The qualities need not be sorted.
  explicit bernoulli_rewards(std::vector<double> etas);

  [[nodiscard]] std::size_t num_options() const noexcept override { return etas_.size(); }
  void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) override;
  [[nodiscard]] double mean(std::uint64_t t, std::size_t option) const override;
  [[nodiscard]] bool reusable() const noexcept override { return true; }

 private:
  std::vector<double> etas_;
};

/// Exactly one option is good per step: option j with probability p_j,
/// Σ p_j = 1.  This realizes the correlation structure of §2.1 example 2
/// (footnote 3: "exactly one of them is 1 in every time step").
class exclusive_rewards final : public reward_model {
 public:
  /// `win_probabilities` must be a probability vector (each in [0,1], sum 1
  /// to within 1e-9).
  explicit exclusive_rewards(std::vector<double> win_probabilities);

  [[nodiscard]] std::size_t num_options() const noexcept override { return p_.size(); }
  void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) override;
  [[nodiscard]] double mean(std::uint64_t t, std::size_t option) const override;
  [[nodiscard]] bool reusable() const noexcept override { return true; }

 private:
  std::vector<double> p_;
};

/// Qualities cyclically rotate every `period` steps: at step t the quality
/// of option j is base[(j + t/period) mod m].  With a sorted base vector the
/// best option hops one index every period — the "stocks" setting of §6.
class switching_rewards final : public reward_model {
 public:
  switching_rewards(std::vector<double> base_etas, std::uint64_t period);

  [[nodiscard]] std::size_t num_options() const noexcept override { return base_.size(); }
  void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) override;
  [[nodiscard]] double mean(std::uint64_t t, std::size_t option) const override;
  [[nodiscard]] bool reusable() const noexcept override { return true; }
  [[nodiscard]] bool is_stationary() const noexcept override { return false; }

 private:
  std::vector<double> base_;
  std::uint64_t period_;
};

/// Qualities drift linearly from `start` at t=1 to `end` at t=horizon and
/// stay at `end` afterwards.
class drifting_rewards final : public reward_model {
 public:
  drifting_rewards(std::vector<double> start_etas, std::vector<double> end_etas,
                   std::uint64_t horizon);

  [[nodiscard]] std::size_t num_options() const noexcept override { return start_.size(); }
  void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) override;
  [[nodiscard]] double mean(std::uint64_t t, std::size_t option) const override;
  [[nodiscard]] bool reusable() const noexcept override { return true; }
  [[nodiscard]] bool is_stationary() const noexcept override { return false; }

 private:
  std::vector<double> start_;
  std::vector<double> end_;
  std::uint64_t horizon_;
};

/// A fixed table of signals: row t-1 holds R^t.  Steps beyond the table wrap
/// around.  Deterministic; the workhorse of the unit tests.
class schedule_rewards final : public reward_model {
 public:
  /// `table[r][j]` in {0,1}; all rows must have equal, positive width.
  explicit schedule_rewards(std::vector<std::vector<std::uint8_t>> table);

  [[nodiscard]] std::size_t num_options() const noexcept override { return width_; }
  void sample(std::uint64_t t, rng& gen, std::span<std::uint8_t> out) override;
  /// The long-run frequency of 1s for the option (the empirical η).
  [[nodiscard]] double mean(std::uint64_t t, std::size_t option) const override;
  [[nodiscard]] bool reusable() const noexcept override { return true; }
  [[nodiscard]] bool is_stationary() const noexcept override { return false; }

 private:
  std::vector<std::vector<std::uint8_t>> table_;
  std::size_t width_;
};

/// Convenience: η = {eta_best, eta_rest, eta_rest, ...} with m options —
/// the canonical instantiation used throughout the paper's examples
/// (η₁ > ½ = η₂ = … = η_m in the Krafft et al. model).
[[nodiscard]] std::vector<double> two_level_etas(std::size_t num_options, double eta_best,
                                                 double eta_rest);

}  // namespace sgl::env
