#pragma once

/// \file graph.h
/// Undirected simple graphs in compressed-sparse-row form, plus the standard
/// topology generators.  Substrate for the paper's first open problem (§6):
/// run the learning dynamics when individuals can only sample their
/// neighbours, and measure how group efficiency depends on topology.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace sgl::graph {

/// An immutable undirected simple graph (no self-loops, no multi-edges)
/// over vertices 0..n-1, stored in CSR form.
class graph {
 public:
  using vertex = std::uint32_t;
  using edge = std::pair<vertex, vertex>;

  /// Builds from an edge list; self-loops are rejected, duplicate edges
  /// (in either orientation) are collapsed.
  graph(std::size_t num_vertices, std::span<const edge> edges);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }
  [[nodiscard]] std::size_t degree(vertex v) const;
  /// Sorted neighbour list of v.
  [[nodiscard]] std::span<const vertex> neighbors(vertex v) const;

  /// Raw CSR arrays — neighbours of v are adjacency()[offsets()[v] ..
  /// offsets()[v+1]).  For tight loops over many vertices (the network
  /// engine's view-delta walk) where the per-call span construction of
  /// neighbors() is measurable.
  [[nodiscard]] std::span<const std::size_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const vertex> adjacency() const noexcept {
    return adjacency_;
  }
  [[nodiscard]] bool has_edge(vertex u, vertex v) const;

  /// True iff the graph is connected (BFS); the empty graph is connected.
  [[nodiscard]] bool is_connected() const;

  [[nodiscard]] double average_degree() const noexcept;
  [[nodiscard]] std::size_t min_degree() const noexcept;
  [[nodiscard]] std::size_t max_degree() const noexcept;

  // --- generators ----------------------------------------------------------

  /// K_n.
  [[nodiscard]] static graph complete(std::size_t n);
  /// Cycle C_n (n >= 3); n <= 2 degenerates to a path.
  [[nodiscard]] static graph ring(std::size_t n);
  /// rows × cols lattice; `wrap` makes it a torus.
  [[nodiscard]] static graph grid(std::size_t rows, std::size_t cols, bool wrap);
  /// Star with vertex 0 as the hub.
  [[nodiscard]] static graph star(std::size_t n);
  /// G(n, p) Erdős–Rényi.
  [[nodiscard]] static graph erdos_renyi(std::size_t n, double p, rng& gen);
  /// Watts–Strogatz small world: ring lattice with k nearest neighbours per
  /// side... (degree 2k), each edge rewired with probability rewire_p.
  [[nodiscard]] static graph watts_strogatz(std::size_t n, std::size_t k, double rewire_p,
                                            rng& gen);
  /// Barabási–Albert preferential attachment, `attach` edges per new vertex.
  [[nodiscard]] static graph barabasi_albert(std::size_t n, std::size_t attach, rng& gen);
  /// Two cliques of size n_each joined by `bridges` disjoint bridge edges —
  /// the classic bottleneck topology for information flow.
  [[nodiscard]] static graph two_cliques(std::size_t n_each, std::size_t bridges);

 private:
  std::vector<std::size_t> offsets_;
  std::vector<vertex> adjacency_;
};

}  // namespace sgl::graph
