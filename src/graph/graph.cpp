#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace sgl::graph {

graph::graph(std::size_t num_vertices, std::span<const edge> edges) {
  if (num_vertices == 0) throw std::invalid_argument{"graph: zero vertices"};

  // Normalize, validate, and deduplicate the edge list.
  std::vector<edge> normalized;
  normalized.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (u >= num_vertices || v >= num_vertices) {
      throw std::invalid_argument{"graph: edge endpoint out of range"};
    }
    if (u == v) throw std::invalid_argument{"graph: self-loop"};
    normalized.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()), normalized.end());

  std::vector<std::size_t> degree(num_vertices, 0);
  for (const auto& [u, v] : normalized) {
    ++degree[u];
    ++degree[v];
  }
  offsets_.assign(num_vertices + 1, 0);
  for (std::size_t v = 0; v < num_vertices; ++v) offsets_[v + 1] = offsets_[v] + degree[v];
  adjacency_.resize(offsets_.back());

  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : normalized) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

std::size_t graph::degree(vertex v) const {
  if (v >= num_vertices()) throw std::out_of_range{"graph::degree: bad vertex"};
  return offsets_[v + 1] - offsets_[v];
}

std::span<const graph::vertex> graph::neighbors(vertex v) const {
  if (v >= num_vertices()) throw std::out_of_range{"graph::neighbors: bad vertex"};
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

bool graph::has_edge(vertex u, vertex v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool graph::is_connected() const {
  const std::size_t n = num_vertices();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<vertex> frontier{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const vertex v = frontier.back();
    frontier.pop_back();
    for (const vertex w : neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        frontier.push_back(w);
      }
    }
  }
  return visited == n;
}

double graph::average_degree() const noexcept {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(num_vertices());
}

std::size_t graph::min_degree() const noexcept {
  std::size_t best = adjacency_.size();
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    best = std::min(best, offsets_[v + 1] - offsets_[v]);
  }
  return best;
}

std::size_t graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    best = std::max(best, offsets_[v + 1] - offsets_[v]);
  }
  return best;
}

// --- generators -------------------------------------------------------------

graph graph::complete(std::size_t n) {
  std::vector<edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return graph{n, edges};
}

graph graph::ring(std::size_t n) {
  std::vector<edge> edges;
  if (n >= 2) {
    for (std::uint32_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
    if (n >= 3) edges.emplace_back(static_cast<vertex>(n - 1), 0U);
  }
  return graph{n, edges};
}

graph graph::grid(std::size_t rows, std::size_t cols, bool wrap) {
  if (rows == 0 || cols == 0) throw std::invalid_argument{"graph::grid: empty grid"};
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<vertex>(r * cols + c);
  };
  std::vector<edge> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
      if (wrap && c + 1 == cols && cols > 2) edges.emplace_back(id(r, c), id(r, 0));
      if (wrap && r + 1 == rows && rows > 2) edges.emplace_back(id(r, c), id(0, c));
    }
  }
  return graph{rows * cols, edges};
}

graph graph::star(std::size_t n) {
  if (n == 0) throw std::invalid_argument{"graph::star: zero vertices"};
  std::vector<edge> edges;
  for (std::uint32_t v = 1; v < n; ++v) edges.emplace_back(0U, v);
  return graph{n, edges};
}

graph graph::erdos_renyi(std::size_t n, double p, rng& gen) {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument{"erdos_renyi: p outside [0,1]"};
  std::vector<edge> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (gen.next_bernoulli(p)) edges.emplace_back(u, v);
    }
  }
  return graph{n, edges};
}

graph graph::watts_strogatz(std::size_t n, std::size_t k, double rewire_p, rng& gen) {
  if (n < 3) throw std::invalid_argument{"watts_strogatz: need n >= 3"};
  if (k == 0 || 2 * k >= n) throw std::invalid_argument{"watts_strogatz: need 0 < 2k < n"};
  if (!(rewire_p >= 0.0 && rewire_p <= 1.0)) {
    throw std::invalid_argument{"watts_strogatz: rewire_p outside [0,1]"};
  }

  // Adjacency sets for O(1)-ish duplicate checks during rewiring.
  std::vector<std::vector<vertex>> adj(n);
  const auto connected = [&](vertex u, vertex v) {
    return std::find(adj[u].begin(), adj[u].end(), v) != adj[u].end();
  };
  const auto link = [&](vertex u, vertex v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  };
  const auto unlink = [&](vertex u, vertex v) {
    std::erase(adj[u], v);
    std::erase(adj[v], u);
  };

  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      const vertex w = static_cast<vertex>((v + j) % n);
      if (!connected(v, w)) link(v, w);
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      const vertex w = static_cast<vertex>((v + j) % n);
      if (!connected(v, w) || !gen.next_bernoulli(rewire_p)) continue;
      // Rewire (v, w) to (v, random target), keeping the graph simple.
      vertex target = v;
      bool found = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        target = static_cast<vertex>(gen.next_below(n));
        if (target != v && !connected(v, target)) {
          found = true;
          break;
        }
      }
      if (found) {
        unlink(v, w);
        link(v, target);
      }
    }
  }

  std::vector<edge> edges;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const vertex w : adj[v]) {
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return graph{n, edges};
}

graph graph::barabasi_albert(std::size_t n, std::size_t attach, rng& gen) {
  if (attach == 0) throw std::invalid_argument{"barabasi_albert: attach must be positive"};
  if (n <= attach) throw std::invalid_argument{"barabasi_albert: need n > attach"};

  std::vector<edge> edges;
  // Endpoint multiset: each vertex appears once per incident edge, so a
  // uniform draw from it is degree-proportional preferential attachment.
  std::vector<vertex> endpoints;

  // Seed: a clique on the first attach+1 vertices.
  for (std::uint32_t u = 0; u <= attach; ++u) {
    for (std::uint32_t v = u + 1; v <= attach; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (std::uint32_t v = static_cast<vertex>(attach + 1); v < n; ++v) {
    std::vector<vertex> targets;
    while (targets.size() < attach) {
      const vertex t = endpoints[gen.next_below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const vertex t : targets) {
      edges.emplace_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return graph{n, edges};
}

graph graph::two_cliques(std::size_t n_each, std::size_t bridges) {
  if (n_each < 2) throw std::invalid_argument{"two_cliques: cliques need >= 2 vertices"};
  if (bridges == 0 || bridges > n_each) {
    throw std::invalid_argument{"two_cliques: bridges must be in [1, n_each]"};
  }
  const std::size_t n = 2 * n_each;
  std::vector<edge> edges;
  for (std::uint32_t u = 0; u < n_each; ++u) {
    for (std::uint32_t v = u + 1; v < n_each; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(static_cast<vertex>(n_each + u), static_cast<vertex>(n_each + v));
    }
  }
  for (std::uint32_t b = 0; b < bridges; ++b) {
    edges.emplace_back(b, static_cast<vertex>(n_each + b));
  }
  return graph{n, edges};
}

}  // namespace sgl::graph
