#include "protocol/protocol_engine.h"

#include <algorithm>
#include <stdexcept>

namespace sgl::protocol {
namespace {

/// Stream index for the churn generator under the simulation seed; chosen
/// away from netsim's node (2^32 + id) and network (0xfeed) streams.
constexpr std::uint64_t k_churn_stream = 0x5ca1ab1eULL;

}  // namespace

netsim::link_model engine_config::links() const noexcept {
  netsim::link_model model;
  model.base_latency = base_latency;
  model.jitter_mean = jitter_mean;
  model.drop_probability = drop_probability;
  return model;
}

void engine_config::validate() const {
  dynamics.validate();
  if (!(round_interval > 0.0)) {
    throw std::invalid_argument{"protocol engine: round interval must be > 0"};
  }
  links().validate();
  if (!(crash_rate >= 0.0 && crash_rate <= 1.0)) {
    throw std::invalid_argument{"protocol engine: crash rate outside [0,1]"};
  }
  if (!(restart_rate >= 0.0 && restart_rate <= 1.0)) {
    throw std::invalid_argument{"protocol engine: restart rate outside [0,1]"};
  }
}

protocol_engine::protocol_engine(const engine_config& config, std::size_t num_nodes,
                                 std::shared_ptr<const graph::graph> topology)
    : config_{config},
      num_nodes_{num_nodes},
      topology_{std::move(topology)},
      board_{config.dynamics.num_options} {
  config_.validate();
  if (num_nodes_ == 0) {
    throw std::invalid_argument{"protocol engine: need at least one node"};
  }
  if (topology_ != nullptr && topology_->num_vertices() != num_nodes_) {
    throw std::invalid_argument{
        "protocol engine: topology vertex count != node count"};
  }
  // Fail fast on an invalid nemesis schedule instead of at the first step.
  config_.faults.validate(num_nodes_);
  reset();
}

void protocol_engine::reset() {
  sim_.reset();
  recorder_.reset();
  learners_.clear();
  const std::size_t m = config_.dynamics.num_options;
  popularity_.assign(m, 1.0 / static_cast<double>(m));
  counts_.assign(m, 0);
  steps_ = 0;
  empty_steps_ = 0;
  alive_ = num_nodes_;
  committed_ = 0;
  uncommitted_since_.assign(num_nodes_, 0);
  was_committed_.assign(num_nodes_, 0);
  commit_latency_rounds_ = 0.0;
  commit_events_ = 0;
}

void protocol_engine::build(rng& gen) {
  // The one word this engine draws from the harness stream: the simulation
  // seed.  Everything stochastic below (node streams, link loss/jitter,
  // churn) derives from it, so the replication is a pure function of the
  // stream — thread count, scheduling, and reuse cannot change it.
  const std::uint64_t sim_seed = gen.next_u64();
  sim_ = std::make_unique<netsim::simulation>(sim_seed);
  churn_gen_ = rng::from_stream(sim_seed, k_churn_stream);

  gossip_params node_params;
  node_params.dynamics = config_.dynamics;
  node_params.round_interval = config_.round_interval;
  node_params.sticky = config_.sticky;
  node_params.max_retries = config_.max_retries;
  node_params.lockstep = config_.lockstep;
  // The dynamics_engine contract starts with nobody committed and uniform
  // popularity; nodes join uncommitted (unlike the standalone runs).
  node_params.start_committed = false;

  learners_.reserve(num_nodes_);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    auto learner = std::make_unique<gossip_learner>(node_params, &board_);
    learners_.push_back(learner.get());
    sim_->add_node(std::move(learner));
  }
  if (topology_ != nullptr) sim_->set_topology(topology_.get());
  sim_->set_link_model(config_.links());
  if (!config_.faults.empty()) sim_->set_fault_schedule(config_.faults);
  if (config_.record_trace) {
    recorder_ = std::make_unique<netsim::trace_recorder>(config_.trace_capacity);
    sim_->set_trace_recorder(recorder_.get());
  }
  sim_->start();
}

void protocol_engine::step(std::span<const std::uint8_t> rewards, rng& gen) {
  if (rewards.size() != config_.dynamics.num_options) {
    throw std::invalid_argument{"protocol engine: reward vector size mismatch"};
  }
  if (sim_ == nullptr) build(gen);

  const std::uint64_t round = ++steps_;
  board_.post(rewards);
  if (recorder_ != nullptr) {
    // The board mark the invariant checker replays: posted at the round's
    // opening boundary, before any node senses it.  b packs the first 64
    // signal bits; detail carries the true option count.
    std::int64_t bits = 0;
    const std::size_t mask_options = std::min<std::size_t>(rewards.size(), 64);
    for (std::size_t j = 0; j < mask_options; ++j) {
      if (rewards[j] != 0) bits |= std::int64_t{1} << j;
    }
    recorder_->append({sim_->now(), netsim::trace_kind::post, 0, 0,
                       static_cast<std::int32_t>(config_.dynamics.num_options),
                       static_cast<std::int64_t>(round), bits});
  }

  if (config_.crash_rate > 0.0 || config_.restart_rate > 0.0) {
    for (netsim::node_id id = 0; id < num_nodes_; ++id) {
      if (sim_->is_alive(id)) {
        if (churn_gen_.next_bernoulli(config_.crash_rate)) sim_->crash_node(id);
      } else if (churn_gen_.next_bernoulli(config_.restart_rate)) {
        sim_->restart_node(id);
      }
    }
  }
  if (config_.lockstep) {
    for (gossip_learner* learner : learners_) learner->latch();
  }

  sim_->run_until(static_cast<double>(round) * config_.round_interval);

  std::fill(counts_.begin(), counts_.end(), 0);
  alive_ = 0;
  committed_ = 0;
  for (netsim::node_id id = 0; id < num_nodes_; ++id) {
    const bool alive = sim_->is_alive(id);
    const std::int32_t choice = learners_[id]->choice();
    const bool committed_now = alive && choice >= 0;
    if (alive) {
      ++alive_;
      if (choice >= 0) {
        ++counts_[static_cast<std::size_t>(choice)];
        ++committed_;
      }
    }
    if (committed_now && was_committed_[id] == 0) {
      commit_latency_rounds_ +=
          static_cast<double>(round - uncommitted_since_[id]);
      ++commit_events_;
    } else if (!committed_now && was_committed_[id] != 0) {
      uncommitted_since_[id] = round;
    }
    was_committed_[id] = committed_now ? 1 : 0;
  }

  const std::size_t m = config_.dynamics.num_options;
  if (committed_ > 0) {
    for (std::size_t j = 0; j < m; ++j) {
      popularity_[j] =
          static_cast<double>(counts_[j]) / static_cast<double>(committed_);
    }
  } else {
    std::fill(popularity_.begin(), popularity_.end(), 1.0 / static_cast<double>(m));
    ++empty_steps_;
  }
}

core::net_metrics protocol_engine::sample_net() const {
  core::net_metrics metrics;
  if (sim_ != nullptr) {
    const netsim::network_stats& stats = sim_->stats();
    metrics.messages_sent = stats.messages_sent;
    metrics.messages_delivered = stats.messages_delivered;
    metrics.messages_dropped = stats.messages_dropped;
    metrics.timers_fired = stats.timers_fired;
    metrics.bytes_sent = stats.bytes_sent();
  }
  metrics.nodes = num_nodes_;
  metrics.alive = alive_;
  metrics.committed = committed_;
  metrics.commit_latency_rounds = commit_latency_rounds_;
  metrics.commit_events = commit_events_;
  return metrics;
}

core::partition_sample protocol_engine::sample_partition() const {
  core::partition_sample sample;
  if (sim_ == nullptr || !sim_->has_partition_sides()) return sample;
  sample.partitioned = sim_->is_partitioned();
  sample.has_sides = true;
  const std::size_t m = config_.dynamics.num_options;
  std::vector<std::uint64_t> counts_a(m, 0);
  std::vector<std::uint64_t> counts_b(m, 0);
  for (netsim::node_id id = 0; id < num_nodes_; ++id) {
    if (!sim_->is_alive(id)) continue;
    const std::int32_t choice = learners_[id]->choice();
    if (choice < 0) continue;
    if (sim_->on_side_a(id)) {
      ++counts_a[static_cast<std::size_t>(choice)];
      ++sample.side_a_committed;
    } else {
      ++counts_b[static_cast<std::size_t>(choice)];
      ++sample.side_b_committed;
    }
  }
  sample.side_a_popularity.assign(m, 0.0);
  sample.side_b_popularity.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    if (sample.side_a_committed > 0) {
      sample.side_a_popularity[j] = static_cast<double>(counts_a[j]) /
                                    static_cast<double>(sample.side_a_committed);
    }
    if (sample.side_b_committed > 0) {
      sample.side_b_popularity[j] = static_cast<double>(counts_b[j]) /
                                    static_cast<double>(sample.side_b_committed);
    }
  }
  return sample;
}

}  // namespace sgl::protocol
