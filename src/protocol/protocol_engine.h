#pragma once

/// \file protocol_engine.h
/// The gossip protocol as a first-class dynamics_engine.
///
/// PRs 1–4 made everything in the repo — probes, scenario I/O, sweeps, the
/// CLI, the bench gate — drive engines solely through the
/// core::dynamics_engine interface.  This adapter plugs the asynchronous
/// netsim/gossip port of §2.1 into that interface: step(t) advances the
/// discrete-event simulation one protocol round (round_interval simulated
/// seconds), the environment's sampled R^t is posted to a shared signal
/// board every node senses during that round, and popularity() is read off
/// the empirical distribution of the nodes' single-integer states — the
/// paper's "weights as popularity" reading, now measurable by every probe.
///
/// Determinism (tested in tests/protocol_engine_test.cpp):
///   * the simulation seed is the first word drawn from the harness's
///     per-replication process stream (rng::from_stream(seed, 2r+1)), so a
///     replication's trajectory is a pure function of (seed, replication) —
///     independent of thread count, scheduling, and engine reuse;
///   * per-node / network / churn streams derive from that seed exactly as
///     documented in DESIGN.md "Protocol RNG stream derivation";
///   * reset() discards the simulation; the next step() draws a fresh seed
///     from its stream, so reset()-reuse is bit-identical to
///     reconstruction (reusable() returns true).
///
/// The engine also implements core::net_instrumented, so the message_cost /
/// commit_latency / adoption probes can account for wire traffic, commit
/// spells, and churn.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/net_metrics.h"
#include "core/params.h"
#include "graph/graph.h"
#include "netsim/simulation.h"
#include "protocol/gossip_learner.h"
#include "support/rng.h"

namespace sgl::protocol {

/// Everything a protocol run needs beyond the dynamics parameters: the
/// round cadence, the link model, the retry budget, fault injection, and
/// the synchrony mode.  Mirrors the scenario layer's `protocol.*` keys.
struct engine_config {
  core::dynamics_params dynamics;  ///< m, μ, α, β

  double round_interval = 1.0;  ///< simulated seconds per protocol round
  double base_latency = 0.05;   ///< per-message delivery latency
  double jitter_mean = 0.0;     ///< Exponential latency jitter (0 = none)
  double drop_probability = 0.0;  ///< i.i.d. Bernoulli packet loss
  std::uint32_t max_retries = 4;  ///< re-asks after an uncommitted reply

  /// Per-node, per-round fault injection: an alive node crashes with
  /// probability crash_rate at the round boundary; a crashed node restarts
  /// (rejoining uncommitted, on_start re-run) with probability
  /// restart_rate.
  double crash_rate = 0.0;
  double restart_rate = 0.0;

  bool sticky = false;    ///< keep the previous choice instead of sitting out
  bool lockstep = false;  ///< replies carry round-boundary choices (§2.1 sync)

  /// Scripted nemesis schedule (times in simulated seconds), installed on
  /// every replication's simulation.  Empty = no scheduled faults; validated
  /// against the node count at engine construction.
  netsim::fault_schedule faults;

  /// Attach a trace_recorder to every replication's simulation (capacity 0
  /// = keep everything, > 0 = ring of the most recent records).  Off by
  /// default; the recorder-off path costs nothing.
  bool record_trace = false;
  std::size_t trace_capacity = 0;

  /// The netsim link model these knobs describe (the single source used
  /// by both validate() and the simulation setup).
  [[nodiscard]] netsim::link_model links() const noexcept;

  /// Throws std::invalid_argument on a non-positive round interval, link
  /// parameters link_model rejects, or rates outside [0,1].  The fault
  /// schedule is checked against the node count in the engine constructor
  /// (validate() has no population to check against).
  void validate() const;
};

/// The harness-posted signal board: serves the environment's sampled R^t
/// to every node for the duration of the current round, realizing the
/// paper's shared-signal assumption inside the asynchronous protocol.
class posted_signals final : public signal_source {
 public:
  explicit posted_signals(std::size_t num_options) : row_(num_options, 0) {}

  void post(std::span<const std::uint8_t> rewards) {
    std::copy(rewards.begin(), rewards.end(), row_.begin());
  }

  [[nodiscard]] std::uint8_t signal(std::uint64_t /*round*/,
                                    std::size_t option) const override {
    return row_[option];
  }
  [[nodiscard]] std::size_t num_options() const noexcept override { return row_.size(); }

 private:
  std::vector<std::uint8_t> row_;
};

class protocol_engine final : public core::dynamics_engine,
                              public core::net_instrumented,
                              public core::partition_instrumented {
 public:
  /// `topology` restricts gossip partners (shared so generated graphs stay
  /// alive across every engine a factory builds); nullptr = fully mixed.
  /// Throws std::invalid_argument on invalid config, num_nodes == 0, or a
  /// topology whose vertex count differs from num_nodes.
  protocol_engine(const engine_config& config, std::size_t num_nodes,
                  std::shared_ptr<const graph::graph> topology = nullptr);

  void reset() override;
  [[nodiscard]] bool reusable() const noexcept override { return true; }
  void step(std::span<const std::uint8_t> rewards, rng& gen) override;
  [[nodiscard]] std::span<const double> popularity() const noexcept override {
    return popularity_;
  }
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept override {
    return counts_;
  }
  [[nodiscard]] std::uint64_t empty_steps() const noexcept override { return empty_steps_; }
  [[nodiscard]] std::uint64_t steps() const noexcept override { return steps_; }

  [[nodiscard]] core::net_metrics sample_net() const override;
  [[nodiscard]] core::partition_sample sample_partition() const override;

  /// The live simulation (nullptr before the first step after a reset);
  /// exposed for determinism tests (trace_hash) and inspection.
  [[nodiscard]] const netsim::simulation* simulation() const noexcept {
    return sim_.get();
  }

  /// The replication's trace recorder (nullptr unless config.record_trace
  /// and a step has run since the last reset).
  [[nodiscard]] const netsim::trace_recorder* recorder() const noexcept {
    return recorder_.get();
  }

 private:
  /// Builds and starts the simulation, seeding it from the next word of
  /// the harness's process stream.
  void build(rng& gen);

  engine_config config_;
  std::size_t num_nodes_;
  std::shared_ptr<const graph::graph> topology_;
  posted_signals board_;

  std::unique_ptr<netsim::simulation> sim_;
  std::unique_ptr<netsim::trace_recorder> recorder_;  ///< owned; sim_ borrows it
  std::vector<gossip_learner*> learners_;  ///< borrowed from sim_
  rng churn_gen_;

  std::vector<double> popularity_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t steps_ = 0;
  std::uint64_t empty_steps_ = 0;
  std::uint64_t alive_ = 0;
  std::uint64_t committed_ = 0;

  // Commit-latency bookkeeping: the round each node's current uncommitted
  // spell started (0 = uncommitted since the beginning).
  std::vector<std::uint64_t> uncommitted_since_;
  std::vector<std::uint8_t> was_committed_;
  double commit_latency_rounds_ = 0.0;
  std::uint64_t commit_events_ = 0;
};

}  // namespace sgl::protocol
