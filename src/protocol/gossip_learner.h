#pragma once

/// \file gossip_learner.h
/// The paper's converse, made executable: the finite-population learning
/// dynamics as a real gossip protocol in which every node stores exactly
/// ONE integer (its current choice) and exchanges two tiny message types.
///
///   round r (every round_interval seconds, per node):
///     with prob. μ   — consider a uniformly random option (self-exploration)
///     otherwise      — SAMPLE_REQ to a uniformly random neighbour
///   on SAMPLE_REQ    — reply SAMPLE_REPLY carrying my current choice
///   on SAMPLE_REPLY  — consider the carried option; if the neighbour was
///                      uncommitted, retry another random neighbour (up to
///                      max_retries — the protocol analogue of popularity
///                      being the distribution among *adopters*), then fall
///                      back to a uniform option
///   consider(j)      — sense the shared signal R^r_j; commit to j with
///                      probability β (good signal) / α (bad); otherwise
///                      sit out (or keep the old choice in sticky mode).
///
/// This is a faithful asynchronous port of §2.1's two-stage dynamics: the
/// popularity vector is never materialized anywhere — it exists only as
/// the empirical distribution of the nodes' single-integer states, exactly
/// the "weights as popularity" reading of the MWU connection.

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.h"
#include "netsim/simulation.h"
#include "support/rng.h"

namespace sgl::protocol {

/// Where a node's sensing of R^r_j comes from.  Every node sensing option j
/// during round r must see the same realization — the paper's shared
/// R^t_j — without any global coordination in the protocol itself.  Two
/// implementations exist: the self-contained signal_oracle below (pure
/// function of the seed, for standalone runs) and the harness-posted board
/// in protocol_engine.h (the environment's sampled R^t, for scenario runs).
class signal_source {
 public:
  virtual ~signal_source() = default;
  [[nodiscard]] virtual std::uint8_t signal(std::uint64_t round,
                                            std::size_t option) const = 0;
  [[nodiscard]] virtual std::size_t num_options() const noexcept = 0;
};

/// Shared signal oracle: R^r_j as a pure function of (seed, round, option),
/// Bernoulli(η_j).
class signal_oracle final : public signal_source {
 public:
  /// Throws std::invalid_argument if any η is outside [0,1] or none given.
  signal_oracle(std::vector<double> etas, std::uint64_t seed);

  [[nodiscard]] std::uint8_t signal(std::uint64_t round, std::size_t option) const override;
  [[nodiscard]] std::size_t num_options() const noexcept override { return etas_.size(); }
  [[nodiscard]] std::span<const double> etas() const noexcept { return etas_; }
  [[nodiscard]] std::size_t best_option() const noexcept;

 private:
  std::vector<double> etas_;
  std::uint64_t seed_;
};

/// Protocol knobs.
struct gossip_params {
  core::dynamics_params dynamics;  ///< m, μ, α, β (validated at node start)
  double round_interval = 1.0;     ///< seconds between a node's wakeups
  bool sticky = false;  ///< keep the previous choice instead of sitting out
  std::uint32_t max_retries = 4;   ///< re-asks after an uncommitted reply

  /// Reply with the choice latched at the last round boundary instead of
  /// the live one, so all of a round's samples read the previous round's
  /// state — the synchronous two-stage update of §2.1.  The driver must
  /// call latch() on every node at each round boundary (protocol_engine
  /// does); without latching the protocol is asynchronous within a round.
  bool lockstep = false;

  /// Start committed to a uniformly random option (the standalone runs'
  /// historical behaviour).  The harness adapter starts uncommitted to
  /// match the dynamics_engine initial-state contract (nobody committed,
  /// uniform popularity).
  bool start_committed = true;

  /// Throws std::invalid_argument on a non-positive round interval.
  void validate() const;
};

/// One protocol participant.  State: a single int (plus borrowed config).
class gossip_learner final : public netsim::node {
 public:
  static constexpr std::int32_t k_sample_request = 1;
  static constexpr std::int32_t k_sample_reply = 2;
  static constexpr std::int32_t k_round_timer = 7;

  /// `signals` is borrowed and must outlive the simulation.
  gossip_learner(const gossip_params& params, const signal_source* signals);

  void on_start(netsim::context& ctx) override;
  void on_message(netsim::context& ctx, const netsim::message& msg) override;
  void on_timer(netsim::context& ctx, std::int32_t timer_id) override;

  /// Current choice; -1 while sitting out.
  [[nodiscard]] std::int32_t choice() const noexcept { return choice_; }

  /// Lockstep support: snapshots the current choice as the one SAMPLE_REQ
  /// replies carry until the next latch (gossip_params::lockstep).
  void latch() noexcept { latched_choice_ = choice_; }

 private:
  void consider(netsim::context& ctx, std::size_t option);
  void send_sample_request(netsim::context& ctx);
  [[nodiscard]] std::uint64_t current_round(const netsim::context& ctx) const noexcept;

  gossip_params params_;
  const signal_source* signals_;
  std::int32_t choice_ = -1;
  std::int32_t latched_choice_ = -1;
  std::uint32_t retries_left_ = 0;
};

/// End-to-end experiment runner used by bench e14 and the sensor-network
/// example: builds a simulation over `num_nodes` gossip learners, runs
/// `rounds` rounds, snapshots popularity each round.
struct gossip_run_result {
  std::vector<double> best_fraction;       ///< per round: committed on best / committed
  std::vector<double> committed_fraction;  ///< per round: committed / alive
  netsim::network_stats net;
  double average_regret = 0.0;  ///< η_best − mean_t Σ_j Q^{t−1}_j R^t_j
};

struct gossip_run_config {
  std::size_t num_nodes = 100;
  std::uint64_t rounds = 200;
  std::uint64_t seed = 1;
  netsim::link_model links;
  const graph::graph* topology = nullptr;  ///< borrowed; nullptr = complete
  double crash_fraction = 0.0;   ///< fraction of nodes crashed mid-run
  std::uint64_t crash_round = 0; ///< when (0 disables even if fraction > 0)
  /// Split-brain injection: at partition_round the first half of the nodes
  /// is cut off from the second half; at heal_round the cut is removed.
  /// 0 disables.
  std::uint64_t partition_round = 0;
  std::uint64_t heal_round = 0;
};

[[nodiscard]] gossip_run_result run_gossip_experiment(const gossip_params& params,
                                                      const signal_oracle& oracle,
                                                      const gossip_run_config& config);

}  // namespace sgl::protocol
