#include "protocol/gossip_learner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace sgl::protocol {

// --- signal_oracle ------------------------------------------------------------

signal_oracle::signal_oracle(std::vector<double> etas, std::uint64_t seed)
    : etas_{std::move(etas)}, seed_{seed} {
  if (etas_.empty()) throw std::invalid_argument{"signal_oracle: no options"};
  for (const double eta : etas_) {
    if (!(eta >= 0.0 && eta <= 1.0)) {
      throw std::invalid_argument{"signal_oracle: eta outside [0,1]"};
    }
  }
}

std::uint8_t signal_oracle::signal(std::uint64_t round, std::size_t option) const {
  if (option >= etas_.size()) throw std::out_of_range{"signal_oracle: bad option"};
  // One fresh deterministic stream per (round, option); its first uniform
  // draw thresholds against η.  Pure function — no shared mutable state.
  rng gen = rng::from_stream(seed_, round * etas_.size() + option + 1);
  return gen.next_double() < etas_[option] ? 1 : 0;
}

std::size_t signal_oracle::best_option() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(etas_.begin(), etas_.end()) - etas_.begin());
}

// --- gossip_params --------------------------------------------------------------

void gossip_params::validate() const {
  dynamics.validate();
  if (!(round_interval > 0.0)) {
    throw std::invalid_argument{"gossip_params: round interval must be > 0"};
  }
}

// --- gossip_learner --------------------------------------------------------------

gossip_learner::gossip_learner(const gossip_params& params, const signal_source* signals)
    : params_{params}, signals_{signals} {
  params_.validate();
  if (signals_ == nullptr) throw std::invalid_argument{"gossip_learner: null signal source"};
  if (signals_->num_options() != params_.dynamics.num_options) {
    throw std::invalid_argument{"gossip_learner: signal/model option-count mismatch"};
  }
}

std::uint64_t gossip_learner::current_round(const netsim::context& ctx) const noexcept {
  return static_cast<std::uint64_t>(ctx.now() / params_.round_interval);
}

void gossip_learner::on_start(netsim::context& ctx) {
  if (params_.start_committed) {
    // Uniform initial commitment — the protocol analogue of Q⁰ = 1/m.
    choice_ =
        static_cast<std::int32_t>(ctx.gen().next_below(params_.dynamics.num_options));
  } else {
    choice_ = -1;
  }
  latched_choice_ = choice_;
  // Random phase so wakeups are spread across the round, then periodic.
  const double phase = (0.05 + 0.9 * ctx.gen().next_double()) * params_.round_interval;
  ctx.set_timer(phase, k_round_timer);
}

void gossip_learner::on_timer(netsim::context& ctx, std::int32_t timer_id) {
  if (timer_id != k_round_timer) return;
  ctx.set_timer(params_.round_interval, k_round_timer);

  const std::size_t m = params_.dynamics.num_options;
  if (ctx.gen().next_bernoulli(params_.dynamics.mu) || ctx.neighbors().empty()) {
    // Exploration (and the only move available to isolated nodes).
    consider(ctx, static_cast<std::size_t>(ctx.gen().next_below(m)));
    return;
  }
  retries_left_ = params_.max_retries;
  send_sample_request(ctx);
}

void gossip_learner::send_sample_request(netsim::context& ctx) {
  const auto nbrs = ctx.neighbors();
  const netsim::node_id target = nbrs[ctx.gen().next_below(nbrs.size())];
  netsim::message req;
  req.kind = k_sample_request;
  ctx.send(target, req);
}

void gossip_learner::on_message(netsim::context& ctx, const netsim::message& msg) {
  switch (msg.kind) {
    case k_sample_request: {
      netsim::message reply;
      reply.kind = k_sample_reply;
      reply.a = params_.lockstep ? latched_choice_ : choice_;
      ctx.send(msg.src, reply);
      break;
    }
    case k_sample_reply: {
      const std::size_t m = params_.dynamics.num_options;
      if (msg.a < 0) {
        // The sampled neighbour was uncommitted: popularity is defined over
        // adopters, so ask someone else (bounded), then fall back.
        if (retries_left_ > 0 && !ctx.neighbors().empty()) {
          --retries_left_;
          send_sample_request(ctx);
        } else {
          consider(ctx, static_cast<std::size_t>(ctx.gen().next_below(m)));
        }
        break;
      }
      const std::size_t option = static_cast<std::size_t>(msg.a);
      if (option >= m) return;  // malformed — drop
      consider(ctx, option);
      break;
    }
    default:
      break;  // unknown kind — drop
  }
}

void gossip_learner::consider(netsim::context& ctx, std::size_t option) {
  const std::uint8_t signal = signals_->signal(current_round(ctx), option);
  const double adopt_p =
      signal != 0 ? params_.dynamics.beta : params_.dynamics.resolved_alpha();
  if (ctx.gen().next_bernoulli(adopt_p)) {
    const bool was_uncommitted = choice_ < 0;
    choice_ = static_cast<std::int32_t>(option);
    // Trace marks for the offline invariant checker: every adoption, plus
    // a commit mark on the uncommitted -> committed edge.  Free when no
    // recorder is attached; never touches the RNG.
    const auto round = static_cast<std::int64_t>(current_round(ctx));
    const auto opt = static_cast<std::int64_t>(option);
    if (was_uncommitted) ctx.record(netsim::trace_kind::commit, 0, opt, round);
    ctx.record(netsim::trace_kind::adopt, 0, opt, round);
  } else if (!params_.sticky) {
    choice_ = -1;
  }
}

// --- run_gossip_experiment --------------------------------------------------------

gossip_run_result run_gossip_experiment(const gossip_params& params,
                                        const signal_oracle& oracle,
                                        const gossip_run_config& config) {
  params.validate();
  if (config.num_nodes == 0) throw std::invalid_argument{"gossip run: no nodes"};
  if (config.rounds == 0) throw std::invalid_argument{"gossip run: no rounds"};
  if (!(config.crash_fraction >= 0.0 && config.crash_fraction <= 1.0)) {
    throw std::invalid_argument{"gossip run: crash fraction outside [0,1]"};
  }

  netsim::simulation sim{config.seed};
  std::vector<gossip_learner*> learners;
  learners.reserve(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    auto learner = std::make_unique<gossip_learner>(params, &oracle);
    learners.push_back(learner.get());
    sim.add_node(std::move(learner));
  }
  if (config.topology != nullptr) sim.set_topology(config.topology);
  sim.set_link_model(config.links);
  sim.start();

  const std::size_t m = oracle.num_options();
  const std::size_t best = oracle.best_option();
  const double eta_best = oracle.etas()[best];

  gossip_run_result result;
  result.best_fraction.reserve(config.rounds);
  result.committed_fraction.reserve(config.rounds);

  std::vector<double> popularity(m, 1.0 / static_cast<double>(m));
  double reward_sum = 0.0;

  rng crash_gen = rng::from_stream(config.seed, 0xc0ffeeULL);

  for (std::uint64_t round = 1; round <= config.rounds; ++round) {
    if (config.crash_round != 0 && round == config.crash_round &&
        config.crash_fraction > 0.0) {
      for (netsim::node_id id = 0; id < config.num_nodes; ++id) {
        if (crash_gen.next_bernoulli(config.crash_fraction)) sim.crash_node(id);
      }
    }
    if (config.partition_round != 0 && round == config.partition_round) {
      std::vector<netsim::node_id> first_half;
      for (netsim::node_id id = 0; id < config.num_nodes / 2; ++id) {
        first_half.push_back(id);
      }
      sim.partition(first_half);
    }
    if (config.heal_round != 0 && round == config.heal_round) sim.heal_partition();

    // Group reward of this round against the pre-round popularity —
    // the protocol analogue of Σ_j Q^{t−1}_j R^t_j.
    for (std::size_t j = 0; j < m; ++j) {
      reward_sum += popularity[j] * static_cast<double>(oracle.signal(round, j));
    }

    sim.run_until(static_cast<double>(round) * params.round_interval);

    std::vector<std::uint64_t> counts(m, 0);
    std::uint64_t committed = 0;
    std::uint64_t alive = 0;
    for (netsim::node_id id = 0; id < config.num_nodes; ++id) {
      if (!sim.is_alive(id)) continue;
      ++alive;
      const std::int32_t choice = learners[id]->choice();
      if (choice >= 0) {
        ++counts[static_cast<std::size_t>(choice)];
        ++committed;
      }
    }
    if (committed > 0) {
      for (std::size_t j = 0; j < m; ++j) {
        popularity[j] = static_cast<double>(counts[j]) / static_cast<double>(committed);
      }
    } else {
      std::fill(popularity.begin(), popularity.end(), 1.0 / static_cast<double>(m));
    }
    result.best_fraction.push_back(popularity[best]);
    result.committed_fraction.push_back(
        alive == 0 ? 0.0 : static_cast<double>(committed) / static_cast<double>(alive));
  }

  result.net = sim.stats();
  result.average_regret = eta_best - reward_sum / static_cast<double>(config.rounds);
  return result;
}

}  // namespace sgl::protocol
