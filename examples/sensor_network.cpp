// Sensor-network channel selection — the paper's converse (§1, §6):
// "the learning dynamics in social groups considered here can inform novel,
// low-memory, low-communication, distributed implementations of the MWU
// algorithm in the stochastic setting; perhaps appropriate for low-power
// devices in distributed settings such as sensor networks or the
// internet-of-things."
//
// 150 battery-powered sensors on a 15x10 grid must converge on the least
// congested of 4 radio channels.  Each node stores ONE integer (its current
// channel), wakes once per round, asks a random grid neighbour which
// channel it uses, senses that channel, and commits with probability
// beta/alpha.  Links are lossy; a fifth of the fleet dies mid-run.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/params.h"
#include "graph/graph.h"
#include "protocol/gossip_learner.h"
#include "support/table.h"

int main() {
  using namespace sgl;

  const std::vector<double> channel_clearness{0.9, 0.55, 0.5, 0.45};
  const graph::graph grid = graph::graph::grid(15, 10, /*wrap=*/false);

  protocol::gossip_params gossip;
  gossip.dynamics = core::theorem_params(channel_clearness.size(), 0.65);
  gossip.round_interval = 1.0;   // one wakeup per second
  gossip.sticky = true;          // a radio must stay on *some* channel

  protocol::signal_oracle oracle{channel_clearness, /*seed=*/314};

  protocol::gossip_run_config config;
  config.num_nodes = grid.num_vertices();
  config.rounds = 240;
  config.seed = 2718;
  config.topology = &grid;
  config.links.base_latency = 0.02;
  config.links.jitter_mean = 0.03;
  config.links.drop_probability = 0.15;  // lossy radio links
  config.crash_fraction = 0.2;           // battery deaths...
  config.crash_round = 120;              // ...two minutes in

  std::printf("Channel selection on a 15x10 sensor grid (%zu nodes, 4 channels,\n"
              "clear-air probabilities 0.9/0.55/0.5/0.45, 15%% packet loss, 20%% of\n"
              "nodes die at round 120).  Per-node state: one int.\n\n",
              grid.num_vertices());

  const protocol::gossip_run_result result =
      protocol::run_gossip_experiment(gossip, oracle, config);

  text_table table{{"round", "share on best channel", "share committed"}};
  for (const std::uint64_t round : {1ULL, 30ULL, 60ULL, 120ULL, 121ULL, 180ULL, 240ULL}) {
    table.add_row({std::to_string(round), fmt(result.best_fraction[round - 1], 3),
                   fmt(result.committed_fraction[round - 1], 3)});
  }
  table.print(std::cout);

  const double msgs_per_node_round =
      static_cast<double>(result.net.messages_sent) /
      (static_cast<double>(config.num_nodes) * static_cast<double>(config.rounds));
  std::printf("\nnetwork cost: %llu messages (%.1f kB), %.2f msgs/node/round, "
              "%.1f%% dropped\n",
              static_cast<unsigned long long>(result.net.messages_sent),
              static_cast<double>(result.net.bytes_sent()) / 1024.0,
              msgs_per_node_round,
              100.0 * static_cast<double>(result.net.messages_dropped) /
                  static_cast<double>(result.net.messages_sent));
  std::printf("average regret vs always-best-channel: %.4f\n", result.average_regret);
  std::printf("\nThe fleet herds onto the clear channel and re-converges after the "
              "crash wave,\nwith two tiny message types and no routing, tables, or "
              "weight vectors anywhere.\n");
  return 0;
}
