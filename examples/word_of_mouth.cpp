// Word-of-mouth learning (the Ellison–Fudenberg instantiation, §2.1 ex. 2).
//
// Two restaurants.  Each evening both deliver a continuous "experience"
// (Normal around their true quality) and every diner's impression is
// further distorted by personal shocks.  A diner asks a random acquaintance
// where they ate, compares the (shock-distorted) experiences, and adopts
// the recommended restaurant iff the comparison favours it.
//
// The paper's reduction maps this to the binary framework; this example
// prints the mapping and runs the two models side by side.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "env/ef_model.h"
#include "env/reward_model.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace sgl;

  env::ef_params restaurants;
  restaurants.mean1 = 0.70;    // the genuinely better kitchen
  restaurants.mean2 = 0.55;
  restaurants.reward_sd = 0.25;  // night-to-night variation
  restaurants.shock_sd = 0.15;   // personal taste shocks

  const env::ef_reduction reduced = env::reduce_ef_model(restaurants);
  std::printf("Ellison-Fudenberg reduction of the two-restaurant town:\n");
  std::printf("  P[restaurant A better tonight]  eta1 = %.3f\n", reduced.eta1);
  std::printf("  adopt-on-good-signal            beta = %.3f\n", reduced.beta);
  std::printf("  adopt-on-bad-signal            alpha = %.3f\n\n", reduced.alpha);

  constexpr std::size_t town_size = 800;
  constexpr std::uint64_t evenings = 365;
  constexpr double mu = 0.03;  // tourists picking at random

  // --- Direct shock-level simulation. ---
  env::ef_direct_dynamics direct{restaurants, town_size, mu};
  rng direct_rewards{3};
  rng direct_people{5};

  // --- Reduced binary dynamics on the exclusive-signal environment. ---
  core::dynamics_params params;
  params.num_options = 2;
  params.mu = mu;
  params.beta = reduced.beta;
  params.alpha = reduced.alpha;
  core::finite_dynamics binary{params, town_size};
  env::exclusive_rewards signals{{reduced.eta1, reduced.eta2}};
  rng binary_env{7};
  rng binary_people{9};

  text_table table{{"evening", "A's share (direct)", "A's share (reduced)"}};
  std::vector<std::uint8_t> r(2);
  for (std::uint64_t evening = 1; evening <= evenings; ++evening) {
    direct.step(direct_rewards, direct_people);
    signals.sample(evening, binary_env, r);
    binary.step(r, binary_people);
    if (evening == 1 || evening % 73 == 0) {
      table.add_row({std::to_string(evening), fmt(direct.popularity()[0], 3),
                     fmt(binary.popularity()[0], 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nBoth formulations agree: restaurant A ends up hosting ~the same "
              "share of the town,\nvalidating the paper's claim that word-of-mouth "
              "models \"can be captured by our formulation\".\n");
  return 0;
}
