// Regime-switching markets (§6: "when the options represent stocks").
//
// Three investment styles whose edge depends on a hidden bull/bear regime
// driven by a Markov chain: momentum wins in bulls, defensive wins in
// bears, and a mediocre style never wins.  A crowd of investors runs the
// copy-then-evaluate dynamics; we watch how quickly the crowd rotates into
// the style that works *now*, and compare the crowd's average reward to a
// buy-and-hold of either style and to the regime-clairvoyant oracle.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "env/markov_rewards.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace sgl;

  constexpr std::uint64_t days = 1500;
  constexpr std::size_t investors = 3000;

  // Styles: momentum, defensive, mediocre.  Regimes: bull, bear.
  const std::vector<std::vector<double>> style_edge{
      {0.80, 0.40, 0.45},  // bull: momentum dominates
      {0.35, 0.75, 0.45},  // bear: defensive dominates
  };
  // transition[k][l] = P(regime k -> regime l) per day.
  const std::vector<std::vector<double>> transitions{
      {0.99, 0.01},    // bulls last ~100 days
      {0.015, 0.985},  // bears last ~67 days
  };
  env::markov_rewards market{style_edge, transitions, days, /*regime_seed=*/5};

  const core::dynamics_params params = core::theorem_params(3, 0.65);
  core::finite_dynamics crowd{params, investors};
  rng crowd_gen{7};
  rng market_gen{11};

  std::printf("Regime-switching market: %zu investors, 3 styles, hidden bull/bear "
              "chain (%llu regime changes\nover %llu days).\n\n",
              investors, static_cast<unsigned long long>(market.num_switches()),
              static_cast<unsigned long long>(days));

  std::vector<std::uint8_t> wins(3);
  double crowd_reward = 0.0;
  double momentum_reward = 0.0;
  double defensive_reward = 0.0;
  double oracle_reward = 0.0;

  text_table table{{"day", "regime", "momentum share", "defensive share",
                    "on current best"}};
  for (std::uint64_t day = 1; day <= days; ++day) {
    const auto share = crowd.popularity();
    market.sample(day, market_gen, wins);
    for (std::size_t j = 0; j < 3; ++j) crowd_reward += share[j] * wins[j];
    momentum_reward += wins[0];
    defensive_reward += wins[1];
    oracle_reward += market.best_mean(day);
    crowd.step(wins, crowd_gen);

    if (day % 250 == 0) {
      const std::size_t best = market.best_option(day);
      table.add_row({std::to_string(day),
                     market.regime_at(day) == 0 ? "bull" : "bear",
                     fmt(crowd.popularity()[0], 3), fmt(crowd.popularity()[1], 3),
                     fmt(crowd.popularity()[best], 3)});
    }
  }
  table.print(std::cout);

  const double d = static_cast<double>(days);
  std::printf("\nAverage daily win rate over %llu days:\n",
              static_cast<unsigned long long>(days));
  std::printf("  copy-the-crowd dynamics : %.3f\n", crowd_reward / d);
  std::printf("  buy-and-hold momentum   : %.3f\n", momentum_reward / d);
  std::printf("  buy-and-hold defensive  : %.3f\n", defensive_reward / d);
  std::printf("  regime-clairvoyant oracle: %.3f\n", oracle_reward / d);
  std::printf("\nThe crowd rotates into whichever style the regime favours within "
              "a few dozen days of each\nswitch — no individual investor tracks "
              "regimes, or anything at all beyond their current style.\n");
  return 0;
}
