// Copy trading (the Krafft et al. instantiation, §2.1 example 1).
//
// "The simplest such example corresponds exactly to our model when
// α = 1 − β for some β ≥ 1/2 when η₁ > 1/2 = η₂ = … = η_m.  The authors
// validate this model using observational data on the decisions of amateur
// investors on an online platform in which users are able to copy the
// actions of others."  (An eToro-like social trading platform.)
//
// We simulate a population of traders choosing between m strategies where
// exactly one has edge (η₁ > ½) and the rest are coin flips, and show how
// the crowd's portfolio concentrates on the profitable strategy — and what
// happens to a latecomer who just copies the crowd.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace sgl;

  constexpr std::size_t num_strategies = 6;
  constexpr std::size_t num_traders = 5000;
  constexpr double edge = 0.62;  // the one strategy that actually works

  // Krafft-style parameters: alpha = 1 - beta, eta = (edge, 1/2, ..., 1/2).
  core::dynamics_params params;
  params.num_options = num_strategies;
  params.beta = 0.7;
  params.alpha = -1.0;  // 1 - beta
  params.mu = 0.02;     // a few independent-minded traders

  env::bernoulli_rewards market{env::two_level_etas(num_strategies, edge, 0.5)};
  core::finite_dynamics traders{params, num_traders};
  rng process_gen{11};
  rng market_gen{13};

  std::printf("Copy trading: %zu traders, %zu strategies, strategy 0 wins %.0f%% of "
              "days, the rest 50%%.\n\n",
              num_traders, num_strategies, edge * 100.0);

  text_table table{{"day", "share on winning strategy", "most popular", "its share",
                    "active traders"}};
  std::vector<std::uint8_t> daily(num_strategies);
  double crowd_pnl = 0.0;   // expected P&L of "copy the crowd" each day
  double solo_pnl = 0.0;    // expected P&L of picking strategies uniformly

  constexpr std::uint64_t days = 250;  // one trading year
  for (std::uint64_t day = 1; day <= days; ++day) {
    const auto share = traders.popularity();
    market.sample(day, market_gen, daily);
    for (std::size_t j = 0; j < num_strategies; ++j) {
      crowd_pnl += share[j] * (daily[j] ? 1.0 : -1.0);
      solo_pnl += (daily[j] ? 1.0 : -1.0) / static_cast<double>(num_strategies);
    }
    traders.step(daily, process_gen);

    if (day == 1 || day % 50 == 0) {
      const auto current = traders.popularity();
      std::size_t top = 0;
      for (std::size_t j = 1; j < num_strategies; ++j) {
        if (current[j] > current[top]) top = j;
      }
      table.add_row({std::to_string(day), fmt(current[0], 3),
                     "strategy " + std::to_string(top), fmt(current[top], 3),
                     std::to_string(traders.adopters())});
    }
  }

  table.print(std::cout);

  std::printf("\nAverage daily expected P&L (1 unit per win, -1 per loss):\n");
  std::printf("  copy-the-crowd portfolio: %+.3f\n",
              crowd_pnl / static_cast<double>(days));
  std::printf("  uniform solo picking:     %+.3f\n",
              solo_pnl / static_cast<double>(days));
  std::printf("  always-best (oracle):     %+.3f\n", 2.0 * edge - 1.0);
  std::printf("\nThe crowd's memoryless copying converts one strategy's %.0f%% edge "
              "into most of the\noracle P&L, with every trader remembering only "
              "their current strategy.\n", edge * 100.0);
  return 0;
}
