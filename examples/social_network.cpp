// Learning over a social network (§6, open problem 1): individuals can only
// observe their network neighbours.  How much does topology matter?
//
// The same population and environment, four different social graphs: the
// fully mixed baseline, a small-world network, a preferential-attachment
// network, and two tight communities joined by a single bridge.  Every case
// is one scenario_spec with a different topology family — the loop below
// never mentions a concrete engine.  Watch the bridged communities: the one
// that stumbles onto the good option early converges first, and the
// innovation crosses the bridge late.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace sgl;
  using family = scenario::topology_spec::family_kind;

  constexpr std::size_t population = 600;

  scenario::scenario_spec base;
  base.name = "social-network";
  base.params = core::theorem_params(3, 0.65);
  base.engine = scenario::engine_kind::agent_based;
  base.num_agents = population;
  base.environment.etas = {0.85, 0.4, 0.4};
  base.topology.seed = 5;

  struct topo_case {
    std::string name;
    family topology;
  };
  const std::vector<topo_case> cases{
      {"fully mixed", family::none},
      {"small world (WS k=4, p=0.1)", family::watts_strogatz},
      {"scale free (BA m=3)", family::barabasi_albert},
      {"two communities, 1 bridge", family::two_cliques},
  };

  std::printf("Social-network learning: %zu people, 3 options, eta = "
              "(0.85, 0.4, 0.4), beta = 0.65.\n\n",
              population);

  text_table table{{"topology", "t=25", "t=50", "t=100", "t=200", "t=400"}};
  for (const auto& c : cases) {
    scenario::scenario_spec spec = base;
    spec.topology.family = c.topology;
    if (c.topology == family::watts_strogatz) {
      spec.topology.degree = 4;
      spec.topology.rewire_probability = 0.1;
    } else if (c.topology == family::barabasi_albert) {
      spec.topology.degree = 3;
    }

    const auto dyn = scenario::make_engine(spec)();
    const auto environment = scenario::make_environment(spec.environment)();
    rng process_gen{33};
    rng env_gen{35};
    std::vector<std::uint8_t> r(spec.params.num_options);
    std::vector<std::string> row{c.name};
    for (std::uint64_t t = 1; t <= 400; ++t) {
      environment->sample(t, env_gen, r);
      dyn->step(r, process_gen);
      if (t == 25 || t == 50 || t == 100 || t == 200 || t == 400) {
        row.push_back(fmt(dyn->popularity()[0], 3));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(cells: share of the population on the best option)\n"
              "Dense mixing converges fastest; the bridged communities lag — the "
              "open problem of\nSection 6 is exactly to quantify this "
              "topology-dependence.  Bench e11_topologies runs\nthe full sweep with "
              "confidence intervals.\n");
  return 0;
}
