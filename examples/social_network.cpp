// Learning over a social network (§6, open problem 1): individuals can only
// observe their network neighbours.  How much does topology matter?
//
// The same population and environment, four different social graphs: the
// fully mixed baseline, a small-world network, a preferential-attachment
// network, and two tight communities joined by a single bridge.  Watch the
// bridged communities: the one that stumbles onto the good option early
// converges first, and the innovation crosses the bridge late.

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "graph/graph.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace sgl;

  constexpr std::size_t population = 600;
  const std::vector<double> etas{0.85, 0.4, 0.4};
  const core::dynamics_params params = core::theorem_params(etas.size(), 0.65);

  rng topology_gen{5};
  struct scenario {
    std::string name;
    std::optional<graph::graph> g;
  };
  std::vector<scenario> scenarios;
  scenarios.push_back({"fully mixed", std::nullopt});
  scenarios.push_back(
      {"small world (WS k=4, p=0.1)",
       graph::graph::watts_strogatz(population, 4, 0.1, topology_gen)});
  scenarios.push_back({"scale free (BA m=3)",
                       graph::graph::barabasi_albert(population, 3, topology_gen)});
  scenarios.push_back({"two communities, 1 bridge",
                       graph::graph::two_cliques(population / 2, 1)});

  std::printf("Social-network learning: %zu people, 3 options, eta = "
              "(0.85, 0.4, 0.4), beta = 0.65.\n\n",
              population);

  text_table table{{"topology", "t=25", "t=50", "t=100", "t=200", "t=400"}};
  for (const auto& s : scenarios) {
    core::finite_dynamics dyn{params, population};
    if (s.g.has_value()) dyn.set_topology(&*s.g);
    env::bernoulli_rewards environment{etas};
    rng process_gen{33};
    rng env_gen{35};
    std::vector<std::uint8_t> r(etas.size());
    std::vector<std::string> row{s.name};
    for (std::uint64_t t = 1; t <= 400; ++t) {
      environment.sample(t, env_gen, r);
      dyn.step(r, process_gen);
      if (t == 25 || t == 50 || t == 100 || t == 200 || t == 400) {
        row.push_back(fmt(dyn.popularity()[0], 3));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(cells: share of the population on the best option)\n"
              "Dense mixing converges fastest; the bridged communities lag — the "
              "open problem of\nSection 6 is exactly to quantify this "
              "topology-dependence.  Bench e11_topologies runs\nthe full sweep with "
              "confidence intervals.\n");
  return 0;
}
