// Collective nest-site choice (the animal-behaviour motivation: Pratt et al.
// on Temnothorax ants, Seeley & Buhrman on honey bee swarms — refs [40, 43]).
//
// A swarm must choose among candidate nest cavities of different quality.
// Scouts advertise their current candidate; an uncommitted or wavering
// scout follows a random advertiser (or explores), inspects the cavity,
// and commits with probability increasing in the observed quality — the
// paper's two-stage dynamics verbatim.  The swarm needs a quorum (90% on
// one site) to lift off.
//
// This example also showcases heterogeneous adoption rules (§2.1: the f_i
// "need not be identical"): some scouts are discerning, some credulous.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace sgl;

  // Five candidate cavities; site 2 is the good one (dry, small entrance).
  const std::vector<double> site_quality{0.45, 0.5, 0.85, 0.4, 0.5};
  constexpr std::size_t num_scouts = 300;
  constexpr double quorum = 0.9;

  core::dynamics_params params;
  params.num_options = site_quality.size();
  params.beta = 0.68;
  params.alpha = -1.0;
  params.mu = 0.04;  // independent scouting

  core::finite_dynamics swarm{params, num_scouts};

  // Heterogeneous scouts: 1/3 discerning (sharp alpha/beta split), 1/3
  // average, 1/3 credulous (adopt almost anything they are shown).
  std::vector<core::adoption_rule> scouts;
  scouts.reserve(num_scouts);
  for (std::size_t i = 0; i < num_scouts; ++i) {
    if (i % 3 == 0) {
      scouts.push_back({0.10, 0.90});  // discerning
    } else if (i % 3 == 1) {
      scouts.push_back({0.32, 0.68});  // average
    } else {
      scouts.push_back({0.55, 0.75});  // credulous
    }
  }
  swarm.set_agent_rules(std::move(scouts));

  env::bernoulli_rewards inspections{site_quality};
  rng swarm_gen{21};
  rng site_gen{23};

  std::printf("Nest-site choice: %zu scouts, %zu sites, qualities "
              "(0.45, 0.50, 0.85, 0.40, 0.50), quorum %.0f%%.\n\n",
              num_scouts, site_quality.size(), quorum * 100.0);

  text_table table{{"hour", "site 0", "site 1", "site 2*", "site 3", "site 4",
                    "committed"}};
  std::vector<std::uint8_t> signals(site_quality.size());
  std::uint64_t quorum_hour = 0;
  for (std::uint64_t hour = 1; hour <= 300; ++hour) {
    inspections.sample(hour, site_gen, signals);
    swarm.step(signals, swarm_gen);
    const auto q = swarm.popularity();
    if (hour == 1 || hour % 30 == 0) {
      table.add_row({std::to_string(hour), fmt(q[0], 2), fmt(q[1], 2), fmt(q[2], 2),
                     fmt(q[3], 2), fmt(q[4], 2), std::to_string(swarm.adopters())});
    }
    if (quorum_hour == 0 && q[2] >= quorum &&
        swarm.adopters() > num_scouts / 2) {
      quorum_hour = hour;
    }
  }
  table.print(std::cout);
  if (quorum_hour > 0) {
    std::printf("\nQuorum on the best site (site 2) reached at hour %llu — "
                "lift-off!\n", static_cast<unsigned long long>(quorum_hour));
  } else {
    std::printf("\nNo quorum within 300 hours (unlucky run — try another seed).\n");
  }
  std::printf("Even with heterogeneous scouts (discerning / average / credulous), "
              "the swarm\nconcentrates on the best cavity, as the paper's remark on "
              "non-identical f_i predicts.\n");
  return 0;
}
