// Quickstart: the distributed learning dynamics in ~40 lines.
//
// A group of 1000 individuals repeatedly picks between 4 options with
// unknown qualities.  Each step every individual (1) copies a random group
// member's choice (or explores with probability mu), then (2) commits to
// the observed option with probability beta if its shared quality signal
// was good, alpha if bad.  Nobody stores anything but their current choice,
// yet the group finds the best option.
//
// The run is the registered "quickstart" scenario, driven through the
// dynamics_engine interface — swap the spec's engine/topology fields and
// this loop works unchanged.
//
// Build & run:  cmake --build build && ./build/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/probe.h"
#include "core/theory.h"
#include "scenario/registry.h"
#include "support/rng.h"

int main() {
  using namespace sgl;

  const scenario::scenario_spec spec = scenario::get_scenario("quickstart");
  const core::dynamics_params& params = spec.params;
  std::printf("m=%zu options, beta=%.2f, alpha=%.2f, mu=%.4f, delta=%.3f\n",
              params.num_options, params.beta, params.resolved_alpha(), params.mu,
              params.delta());
  std::printf("paper bounds: Regret_inf <= %.3f, Regret_N <= %.3f\n\n",
              core::theory::infinite_regret_bound(params.beta),
              core::theory::finite_regret_bound(params.beta));

  const auto group = scenario::make_engine(spec)();
  const auto environment = scenario::make_environment(spec.environment)();
  rng process_gen{2024};
  rng reward_gen{7};

  std::vector<std::uint8_t> signals(params.num_options);
  double reward_sum = 0.0;
  const std::uint64_t horizon = 200;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    const auto popularity = group->popularity();  // Q^{t-1}
    environment->sample(t, reward_gen, signals);  // shared R^t
    for (std::size_t j = 0; j < signals.size(); ++j) {
      reward_sum += popularity[j] * signals[j];
    }
    group->step(signals, process_gen);

    if (t % 25 == 0 || t == 1) {
      std::printf("t=%3llu  popularity = [", static_cast<unsigned long long>(t));
      for (std::size_t j = 0; j < params.num_options; ++j) {
        std::printf("%s%.3f", j ? ", " : "", group->popularity()[j]);
      }
      std::uint64_t committed = 0;
      for (const std::uint64_t d : group->adopter_counts()) committed += d;
      std::printf("]  committed = %llu/%llu\n",
                  static_cast<unsigned long long>(committed),
                  static_cast<unsigned long long>(spec.num_agents));
    }
  }

  const double regret = environment->best_mean(1) - reward_sum / static_cast<double>(horizon);
  std::printf("\naverage regret over %llu steps: %.4f  (bound: %.3f)\n",
              static_cast<unsigned long long>(horizon), regret,
              core::theory::finite_regret_bound(params.beta));

  // The same scenario under the Monte-Carlo harness with composable probes:
  // 50 replications, measuring regret AND the consensus hitting time in one
  // pass.  `sociolearn_cli scenario --name quickstart --probes ...` is this.
  core::run_config config;
  config.horizon = horizon;
  config.replications = 50;
  const std::vector<std::string> probes{"regret", "hitting_time(eps=0.3)"};
  const auto merged = scenario::run_probes(spec, config, probes);
  for (const auto& probe : merged) {
    const core::probe_report report = probe->report();
    std::printf("probe %s:", report.probe.c_str());
    for (const auto& scalar : report.scalars) {
      std::printf("  %s=%.4f", scalar.key.c_str(), scalar.value);
    }
    std::printf("\n");
  }
  return 0;
}
