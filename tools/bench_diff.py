#!/usr/bin/env python3
"""Compare two google-benchmark JSON reports and flag regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT] [--metric M]

Prints a per-benchmark table of baseline vs current times and the percent
change (positive = slower than the baseline).  Exits non-zero when any
benchmark shared by both files regressed by more than --threshold percent
(default 25) — the contract of the CI perf-smoke job, which compares a
fresh `harness_bench` run against the checked-in BENCH_PR4.json.

Only benchmarks present in both files are compared; `aggregate_name`
entries (mean/median/stddev rows emitted with --benchmark_repetitions) are
skipped so each benchmark is judged by its primary measurement.  Times are
normalized through each entry's own time_unit, so reports with different
units compare correctly.

Benchmarks present in only one report are listed in a trailing
"added"/"removed" section with their times, so a rename or a deleted
benchmark is visible in the CI log instead of silently dropping out of the
comparison.  They never affect the exit status — the gate judges shared
benchmarks only.
"""

import argparse
import json
import sys

_TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_benchmarks(path, metric):
    """Returns {benchmark name: seconds} for the primary entries of a report."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    results = {}
    for entry in document.get("benchmarks", []):
        if entry.get("run_type") == "aggregate" or "aggregate_name" in entry:
            continue
        name = entry.get("name")
        if name is None or metric not in entry:
            continue
        scale = _TIME_UNITS.get(entry.get("time_unit", "ns"))
        if scale is None:
            raise SystemExit(f"{path}: unknown time_unit in benchmark '{name}'")
        results[name] = entry[metric] * scale
    if not results:
        raise SystemExit(f"{path}: no benchmark entries with metric '{metric}'")
    return results


def format_seconds(seconds):
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline google-benchmark JSON")
    parser.add_argument("current", help="current google-benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="maximum tolerated slowdown in percent (default: 25)",
    )
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which per-iteration time to compare (default: real_time)",
    )
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline, args.metric)
    current = load_benchmarks(args.current, args.metric)

    shared = [name for name in baseline if name in current]
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    regressions = []
    if shared:
        width = max(len(name) for name in shared)
        print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'delta':>8}")
        for name in shared:
            before, after = baseline[name], current[name]
            delta = (after - before) / before * 100.0 if before > 0 else 0.0
            flag = ""
            if delta > args.threshold:
                regressions.append((name, delta))
                flag = "  << REGRESSION"
            print(
                f"{name:<{width}}  {format_seconds(before):>10}  "
                f"{format_seconds(after):>10}  {delta:>+7.1f}%{flag}"
            )
    if only_current:
        print(f"\nadded ({len(only_current)} benchmark(s) only in {args.current}):")
        for name in only_current:
            print(f"  {name}: {format_seconds(current[name])}")
    if only_baseline:
        print(f"\nremoved ({len(only_baseline)} benchmark(s) only in {args.baseline}):")
        for name in only_baseline:
            print(f"  {name}: {format_seconds(baseline[name])}")

    # Diagnose the empty intersection *after* the added/removed sections:
    # a wholesale rename (every baseline row "removed", every current row
    # "added") should leave its evidence in the CI log, not a bare error.
    if not shared:
        print(
            "\nFAIL: no benchmarks in common between the two reports "
            "(see the added/removed sections above)",
            file=sys.stderr,
        )
        return 1
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) slower than the "
            f"baseline by more than {args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed by more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
