#!/usr/bin/env python3
"""Crash-recovery torture for sociolearnd.

The contract under test (DESIGN.md "Failure model and recovery
guarantees"): no matter how the service is interrupted — killed mid-sweep,
I/O faults injected at every store edge, broken client sockets, SIGTERM,
even bit rot in the store — a resubmission against a clean daemon converges
to the exact store bytes an undisturbed run produces, and `fsck` comes back
clean.

Each seeded cycle picks a fault from the menu, runs a sweep against a
daemon configured with that fault, then recovers: a clean daemon, a client
resubmission (with retries), and an assertion that the job finishes `done`
with every point accounted for.  The same store directory lives through
all cycles, so later cycles resume over earlier cycles' objects exactly
like a long-lived deployment.  At the end the store must be byte-identical
to a reference store produced by an undisturbed daemon, and fsck must
report it clean.

Usage:
    python3 tools/service_torture.py --build-dir build --cycles 25 --seed 1

Exit status 0 only if every cycle recovered and the final store matches
the reference byte for byte.
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

FAULTS = [
    "kill_after_points",   # daemon _Exit()s right after the Nth computed point
    "store_fault",         # one store I/O edge throws on the Kth hit
    "bernoulli_fsync",     # every fsync fails with probability p (seeded)
    "queue_point",         # point delivery itself throws mid-sweep
    "socket_write_fail",   # the daemon's reply socket breaks mid-stream
    "sigterm_drain",       # SIGTERM lands mid-sweep; daemon must drain, exit 0
    "bit_rot",             # one stored object is corrupted; fsck must repair
    "client_retry",        # the client's first connect fails; retries recover
]

STORE_SITES = ["store.tmp_open", "store.write", "store.fsync", "store.rename"]


class Daemon:
    """One sociolearnd process; waits for the ready line on start."""

    def __init__(self, binary, socket_path, store, extra_flags=(), env_extra=None):
        self.socket_path = socket_path
        self.log = tempfile.NamedTemporaryFile(
            mode="w+", prefix="sociolearnd_", suffix=".log", delete=False)
        env = dict(os.environ)
        env.pop("SGL_FAILPOINTS", None)
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [binary, "--socket", socket_path, "--store", store, *extra_flags],
            stdout=self.log, stderr=self.log, env=env)
        deadline = time.time() + 15
        while time.time() < deadline:
            self.log.flush()
            with open(self.log.name) as f:
                if '"event":"ready"' in f.read():
                    return
            if self.proc.poll() is not None:
                break
            time.sleep(0.05)
        raise RuntimeError(f"daemon never became ready; log:\n{self.read_log()}")

    def read_log(self):
        with open(self.log.name) as f:
            return f.read()

    def stop(self, expect_clean=True):
        """SIGTERM + wait; returns the exit status."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            status = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise RuntimeError(f"daemon did not drain; log:\n{self.read_log()}")
        if expect_clean and status != 0:
            raise RuntimeError(
                f"daemon exited {status}, expected 0; log:\n{self.read_log()}")
        return status

    def wait(self, timeout=60):
        return self.proc.wait(timeout=timeout)


def submit(cli, socket_path, seed, retries=0, env_extra=None, check=False):
    """One sweep submission; returns (returncode, parsed JSONL events)."""
    env = dict(os.environ)
    env.pop("SGL_FAILPOINTS", None)
    if env_extra:
        env.update(env_extra)
    cmd = [
        cli, "submit", "--socket", socket_path,
        "--name", "quickstart", "--sweep", "params.beta=0.6,0.65,0.7",
        "--horizon", "50", "--reps", "8", "--seed", str(seed),
        "--retries", str(retries), "--retry-base-ms", "20",
    ]
    result = subprocess.run(cmd, capture_output=True, text=True, env=env,
                            timeout=120)
    events = []
    for line in result.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                pass
    if check and result.returncode != 0:
        raise RuntimeError(
            f"submit (seed {seed}) failed rc={result.returncode}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    return result.returncode, events


def assert_recovered(events, seed, context):
    done = [e for e in events if e.get("event") == "job_done"]
    if not done or done[-1].get("status") != "done":
        raise RuntimeError(f"{context}: recovery submit (seed {seed}) did not "
                           f"finish done: {done}")
    total = done[-1]["computed"] + done[-1]["cached"]
    if done[-1]["total"] != total or done[-1]["total"] != 3:
        raise RuntimeError(f"{context}: points unaccounted for: {done[-1]}")


def store_objects(store):
    """Map of store-relative object path -> raw bytes."""
    objects = {}
    root = os.path.join(store, "objects")
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as f:
                objects[os.path.relpath(path, root)] = f.read()
    return objects


def run_fsck(cli, store, repair=False):
    cmd = [cli, "fsck", "--store", store] + (["--repair"] if repair else [])
    return subprocess.run(cmd, capture_output=True, text=True, timeout=60)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--cycles", type=int, default=25)
    parser.add_argument("--seed", type=int, default=20260809)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    args = parser.parse_args()

    daemon_bin = os.path.join(args.build_dir, "sociolearnd")
    cli = os.path.join(args.build_dir, "sociolearn_cli")
    for binary in (daemon_bin, cli):
        if not os.path.exists(binary):
            print(f"torture: missing binary {binary}", file=sys.stderr)
            return 2

    workdir = args.workdir or tempfile.mkdtemp(prefix="sgl_torture_")
    os.makedirs(workdir, exist_ok=True)
    ref_store = os.path.join(workdir, "reference_store")
    store = os.path.join(workdir, "torture_store")
    sock = os.path.join(workdir, "sgl.sock")
    rng = random.Random(args.seed)
    # One per-cycle sweep seed: every cycle computes fresh points, so the
    # injected faults always have real work to interrupt, and the store
    # accumulates across cycles like a long-lived deployment.
    cycle_seeds = [rng.randrange(1, 10**9) for _ in range(args.cycles)]

    # Reference: every cycle's sweep, one undisturbed daemon, no faults.
    print(f"torture: reference run ({args.cycles} sweeps)", flush=True)
    daemon = Daemon(daemon_bin, sock, ref_store)
    for seed in cycle_seeds:
        _rc, events = submit(cli, sock, seed, check=True)
        assert_recovered(events, seed, "reference")
    daemon.stop()
    reference = store_objects(ref_store)

    failures = 0
    for cycle, seed in enumerate(cycle_seeds):
        fault = FAULTS[rng.randrange(len(FAULTS))]
        print(f"torture: cycle {cycle + 1}/{args.cycles}: {fault} "
              f"(sweep seed {seed})", flush=True)
        try:
            if fault == "kill_after_points":
                n = rng.randrange(1, 3)
                daemon = Daemon(daemon_bin, sock, store,
                                extra_flags=["--exit-after-points", str(n)])
                submit(cli, sock, seed)     # dies mid-stream with the daemon
                daemon.wait()               # _Exit(0) after the Nth point
            elif fault == "store_fault":
                site = STORE_SITES[rng.randrange(len(STORE_SITES))]
                hit = rng.randrange(1, 4)
                daemon = Daemon(daemon_bin, sock, store,
                                env_extra={"SGL_FAILPOINTS": f"{site}={hit}"})
                submit(cli, sock, seed)     # job fails; daemon survives
                daemon.stop()
            elif fault == "bernoulli_fsync":
                spec = f"store.fsync=p=0.5@{rng.randrange(1 << 31)}"
                daemon = Daemon(daemon_bin, sock, store,
                                env_extra={"SGL_FAILPOINTS": spec})
                submit(cli, sock, seed)
                daemon.stop()
            elif fault == "queue_point":
                hit = rng.randrange(1, 4)
                daemon = Daemon(daemon_bin, sock, store,
                                env_extra={"SGL_FAILPOINTS": f"queue.point={hit}"})
                submit(cli, sock, seed)
                daemon.stop()
            elif fault == "socket_write_fail":
                hit = rng.randrange(2, 5)
                daemon = Daemon(daemon_bin, sock, store,
                                env_extra={"SGL_FAILPOINTS": f"socket.write_fail={hit}"})
                submit(cli, sock, seed)     # reply stream breaks; jobs cancelled
                daemon.stop()
            elif fault == "sigterm_drain":
                daemon = Daemon(daemon_bin, sock, store)
                with subprocess.Popen(
                        [cli, "submit", "--socket", sock, "--name", "quickstart",
                         "--sweep", "params.beta=0.6,0.65,0.7", "--horizon", "50",
                         "--reps", "8", "--seed", str(seed)],
                        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL) as client:
                    time.sleep(rng.uniform(0.02, 0.25))
                    daemon.stop(expect_clean=True)  # must drain and exit 0
                    client.wait(timeout=30)
                if "drain" not in daemon.read_log():
                    raise RuntimeError("SIGTERM did not take the drain path:\n"
                                       + daemon.read_log())
            elif fault == "bit_rot":
                # Ensure there is an object to rot, then flip one byte of a
                # seeded victim.  fsck must see it; --repair must clear it.
                daemon = Daemon(daemon_bin, sock, store)
                _rc, events = submit(cli, sock, seed, check=True)
                assert_recovered(events, seed, "bit_rot pre-fill")
                daemon.stop()
                # Rot one of THIS sweep's objects (the recovery submit below
                # is what must recompute it); the digests came back in
                # job_accepted.
                accepted = next(e for e in events if e.get("event") == "job_accepted")
                digest = accepted["digests"][rng.randrange(len(accepted["digests"]))]
                victim = os.path.join(store, "objects", digest[:2], digest + ".json")
                with open(victim, "r+b") as f:
                    data = bytearray(f.read())
                    data[rng.randrange(len(data))] ^= 0x40
                    f.seek(0)
                    f.write(data)
                if run_fsck(cli, store).returncode == 0:
                    raise RuntimeError(f"fsck missed the corrupted {victim}")
                repair = run_fsck(cli, store, repair=True)
                if run_fsck(cli, store).returncode != 0:
                    raise RuntimeError(
                        f"fsck --repair left a dirty store:\n{repair.stdout}")
            elif fault == "client_retry":
                # The daemon is healthy; the CLIENT's first connect is the
                # injected failure, and its retry/backoff loop must recover
                # within the same invocation.
                daemon = Daemon(daemon_bin, sock, store)
                _rc, events = submit(cli, sock, seed, retries=3,
                                     env_extra={"SGL_FAILPOINTS": "socket.connect=1"},
                                     check=True)
                assert_recovered(events, seed, "client_retry")
                daemon.stop()

            # Recovery: a clean daemon, a retried resubmission, and every
            # point present (recomputed or cached — the digests decide).
            daemon = Daemon(daemon_bin, sock, store)
            _rc, events = submit(cli, sock, seed, retries=4, check=True)
            assert_recovered(events, seed, f"cycle {cycle + 1} ({fault})")
            daemon.stop()
        except Exception as error:  # noqa: BLE001 - report and count every shape
            print(f"torture: cycle {cycle + 1} FAILED ({fault}): {error}",
                  file=sys.stderr, flush=True)
            failures += 1

    # Post-conditions: the surviving store is clean and byte-identical to
    # the undisturbed reference.
    fsck = run_fsck(cli, store)
    if fsck.returncode != 0:
        print(f"torture: final fsck not clean:\n{fsck.stdout}", file=sys.stderr)
        failures += 1
    final = store_objects(store)
    if final != reference:
        only_ref = sorted(set(reference) - set(final))
        only_final = sorted(set(final) - set(reference))
        differing = sorted(k for k in set(reference) & set(final)
                           if reference[k] != final[k])
        print(f"torture: store diverged from reference: "
              f"missing={only_ref[:5]} extra={only_final[:5]} "
              f"differing={differing[:5]}", file=sys.stderr)
        failures += 1

    if failures == 0:
        print(f"torture: {args.cycles} cycles recovered; store byte-identical "
              f"to reference ({len(final)} objects); fsck clean")
    if not args.keep and args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
