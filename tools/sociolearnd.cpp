// sociolearnd — the long-lived experiment service.
//
//   sociolearnd --socket /tmp/sgl.sock --store /var/lib/sociolearn
//       listens on a Unix-domain stream socket.  Each connection is one
//       session: newline-delimited JSON requests in (submit / status /
//       cancel), JSONL events out (job_accepted, cache_hit, point_done,
//       job_done, ...).  See DESIGN.md "Service mode" for the protocol.
//   sociolearnd --once --store /var/lib/sociolearn < requests.jsonl
//       no socket: requests from stdin, events to stdout, exit when every
//       submitted job has finished.  The same protocol, usable from CI
//       and shell pipelines without managing a daemon.
//
// Jobs are decomposed into (point × shard) work items on the process-wide
// worker pool; every point result is keyed by its content digest and
// persisted to the store before its event is sent, so points already in
// the store are served as cache_hit events without recomputation, and a
// killed daemon resumes a resubmitted sweep from exactly the points it
// had persisted.
//
// --exit-after-points N is a crash-test hook: the daemon calls _Exit
// right after the Nth computed point's event is written, at a
// deterministic point of the protocol, so the kill-and-resume contract is
// testable from CI without signal races.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.h"
#include "service/result_store.h"
#include "service/service.h"
#include "service/socket.h"
#include "support/flags.h"

namespace {

using namespace sgl;

struct daemon_config {
  service::job_queue* queue = nullptr;
  std::int64_t exit_after_points = 0;        // 0 = never
  std::atomic<std::int64_t> points_emitted{0};
};

service::session_options make_session_options(
    daemon_config& daemon, std::function<bool(std::string_view)> write_line) {
  service::session_options options;
  options.write_line = std::move(write_line);
  if (daemon.exit_after_points > 0) {
    options.on_point_computed = [&daemon] {
      const std::int64_t n =
          daemon.points_emitted.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (n >= daemon.exit_after_points) {
        // The crash under test: die without flushing, unwinding, or
        // persisting anything further.  Everything already acknowledged
        // is in the store (persist-then-emit), nothing else may be.
        std::_Exit(0);
      }
    };
  }
  return options;
}

void serve_connection(service::unix_fd fd, daemon_config& daemon) {
  service::session session{
      *daemon.queue, make_session_options(daemon, [&fd](std::string_view line) {
        std::string out{line};
        out += '\n';
        return service::write_all(fd.get(), out);
      })};
  try {
    service::line_reader reader;
    while (std::optional<std::string> line = reader.next_line(fd.get())) {
      session.handle_line(*line);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sociolearnd: connection error: %s\n", e.what());
  }
  // The session destructor waits for this session's jobs (or cancels
  // them when the peer is already gone) before the socket closes.
}

int run_once(daemon_config& daemon) {
  service::session session{
      *daemon.queue, make_session_options(daemon, [](std::string_view line) {
        std::cout << line << '\n' << std::flush;
        return static_cast<bool>(std::cout);
      })};
  std::string line;
  while (std::getline(std::cin, line)) session.handle_line(line);
  session.finish();
  return 0;
}

int run_daemon(daemon_config& daemon, const std::string& socket_path) {
  service::unix_fd listener = service::unix_listen(socket_path);
  // The ready line is the startup handshake: scripts wait for it instead
  // of polling the socket path.
  std::printf("{\"event\":\"ready\",\"socket\":\"%s\"}\n", socket_path.c_str());
  std::fflush(stdout);

  std::vector<std::thread> connections;
  for (;;) {
    service::unix_fd fd = service::unix_accept(listener);
    if (!fd.valid()) continue;  // EINTR and friends; keep serving
    connections.emplace_back(
        [&daemon](service::unix_fd conn) { serve_connection(std::move(conn), daemon); },
        std::move(fd));
  }
  // Unreachable: the daemon runs until killed.  Connection threads die
  // with the process; their jobs' persisted points are the resume state.
}

}  // namespace

int main(int argc, char** argv) {
  flag_set flags{"sociolearnd",
                 "the sociolearn experiment service: a job queue with a "
                 "content-addressed result cache over a Unix-domain socket "
                 "(or stdin/stdout with --once)"};
  flags.add_string("socket", "", "Unix-domain socket path to listen on");
  flags.add_string("store", "", "result store directory (created if missing)");
  flags.add_bool("once", false,
                 "serve one session from stdin/stdout and exit when every "
                 "submitted job has finished (no socket)");
  flags.add_int64("threads", 0,
                  "worker threads for replication shards (0 = all cores); "
                  "results are bit-identical for any value");
  flags.add_int64("exit-after-points", 0,
                  "crash-test hook: _Exit right after this many computed "
                  "points have been emitted (0 = never)");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;

  const std::string& store_path = flags.get_string("store");
  const std::string& socket_path = flags.get_string("socket");
  const bool once = flags.get_bool("once");
  if (store_path.empty()) {
    std::fprintf(stderr, "sociolearnd: --store is required\n");
    return 2;
  }
  if (once != socket_path.empty()) {  // exactly one of --once / --socket
    std::fprintf(stderr, "sociolearnd: pass either --socket PATH or --once\n");
    return 2;
  }

  try {
    service::result_store store{store_path};
    service::job_queue queue{store,
                             static_cast<unsigned>(flags.get_int64("threads"))};
    daemon_config daemon;
    daemon.queue = &queue;
    daemon.exit_after_points = flags.get_int64("exit-after-points");
    return once ? run_once(daemon) : run_daemon(daemon, socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sociolearnd: %s\n", e.what());
    return 1;
  }
}
