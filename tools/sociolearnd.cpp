// sociolearnd — the long-lived experiment service.
//
//   sociolearnd --socket /tmp/sgl.sock --store /var/lib/sociolearn
//       listens on a Unix-domain stream socket.  Each connection is one
//       session: newline-delimited JSON requests in (submit / status /
//       cancel), JSONL events out (job_accepted, cache_hit, point_done,
//       job_done, ...).  See DESIGN.md "Service mode" for the protocol.
//   sociolearnd --once --store /var/lib/sociolearn < requests.jsonl
//       no socket: requests from stdin, events to stdout, exit when every
//       submitted job has finished.  The same protocol, usable from CI
//       and shell pipelines without managing a daemon.
//
// Jobs are decomposed into (point × shard) work items on the process-wide
// worker pool; every point result is keyed by its content digest and
// persisted to the store before its event is sent, so points already in
// the store are served as cache_hit events without recomputation, and a
// killed daemon resumes a resubmitted sweep from exactly the points it
// had persisted.
//
// Robustness knobs (DESIGN.md "Failure model and recovery guarantees"):
// --max-queued bounds the waiting queue (submits past it get an explicit
// job_rejected backpressure reply); --job-timeout caps any job's wall
// clock; SIGTERM/SIGINT trigger a graceful drain — stop accepting, cancel
// every job at its next work item (completed points stay persisted), send
// the pending job_done events, then exit 0.  SGL_FAILPOINTS= scripts
// deterministic faults into the store/socket/queue edges (support/
// failpoint.h) for torture testing.
//
// --exit-after-points N is a crash-test hook: the daemon calls _Exit
// right after the Nth computed point's event is written, at a
// deterministic point of the protocol, so the kill-and-resume contract is
// testable from CI without signal races.

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "service/job_queue.h"
#include "service/result_store.h"
#include "service/service.h"
#include "service/socket.h"
#include "support/failpoint.h"
#include "support/flags.h"

namespace {

using namespace sgl;

/// Set by the SIGTERM/SIGINT handler; the accept loop polls it.
std::atomic<bool> g_shutdown{false};

void request_shutdown(int) noexcept { g_shutdown.store(true, std::memory_order_release); }

struct daemon_config {
  service::job_queue* queue = nullptr;
  std::int64_t exit_after_points = 0;        // 0 = never
  double job_timeout_seconds = 0.0;          // 0 = none; per-job default
  std::atomic<std::int64_t> points_emitted{0};

  // Live connection fds, so a drain can unblock their readers: shutdown()
  // forces each blocked read() to return 0 (EOF) and the session winds
  // down through its normal end-of-stream path.
  std::mutex connections_mutex;
  std::vector<int> connection_fds;
};

service::session_options make_session_options(
    daemon_config& daemon, std::function<bool(std::string_view)> write_line) {
  service::session_options options;
  options.write_line = std::move(write_line);
  options.default_timeout_seconds = daemon.job_timeout_seconds;
  if (daemon.exit_after_points > 0) {
    options.on_point_computed = [&daemon] {
      const std::int64_t n =
          daemon.points_emitted.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (n >= daemon.exit_after_points) {
        // The crash under test: die without flushing, unwinding, or
        // persisting anything further.  Everything already acknowledged
        // is in the store (persist-then-emit), nothing else may be.
        std::_Exit(0);
      }
    };
  }
  return options;
}

void serve_connection(service::unix_fd fd, daemon_config& daemon) {
  {
    const std::lock_guard<std::mutex> lock{daemon.connections_mutex};
    daemon.connection_fds.push_back(fd.get());
  }
  service::session session{
      *daemon.queue, make_session_options(daemon, [&fd](std::string_view line) {
        std::string out{line};
        out += '\n';
        if (service::write_all(fd.get(), out)) return true;
        // The reply path is broken, so the conversation is over — but the
        // reader below may be blocked in read() waiting for a request that
        // will never matter.  Shut the socket down so it sees EOF and the
        // session can wind down (cancelling this connection's jobs)
        // instead of holding the connection until the peer times out.
        ::shutdown(fd.get(), SHUT_RDWR);
        return false;
      })};
  try {
    service::line_reader reader;
    while (std::optional<std::string> line = reader.next_line(fd.get())) {
      session.handle_line(*line);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sociolearnd: connection error: %s\n", e.what());
  }
  {
    const std::lock_guard<std::mutex> lock{daemon.connections_mutex};
    std::erase(daemon.connection_fds, fd.get());
  }
  // The session destructor waits for this session's jobs (or cancels
  // them when the peer is already gone) before the socket closes.
}

int run_once(daemon_config& daemon) {
  service::session session{
      *daemon.queue, make_session_options(daemon, [](std::string_view line) {
        std::cout << line << '\n' << std::flush;
        return static_cast<bool>(std::cout);
      })};
  std::string line;
  while (std::getline(std::cin, line)) session.handle_line(line);
  session.finish();
  return 0;
}

int run_daemon(daemon_config& daemon, const std::string& socket_path) {
  service::unix_fd listener = service::unix_listen(socket_path);

  // Graceful drain on SIGTERM/SIGINT; SIGPIPE is already neutralized by
  // MSG_NOSIGNAL, but belt and suspenders for platforms without it.
  std::signal(SIGTERM, request_shutdown);
  std::signal(SIGINT, request_shutdown);
  std::signal(SIGPIPE, SIG_IGN);

  // The ready line is the startup handshake: scripts wait for it instead
  // of polling the socket path.
  std::printf("{\"event\":\"ready\",\"socket\":\"%s\"}\n", socket_path.c_str());
  std::fflush(stdout);

  std::vector<std::thread> connections;
  while (!g_shutdown.load(std::memory_order_acquire)) {
    // Poll-based accept so the signal flag is observed within 200 ms even
    // when the signal lands on some other thread mid-read.
    service::unix_fd fd = service::unix_accept_interruptible(listener, 200);
    if (!fd.valid()) continue;  // timeout / EINTR; re-check the flag
    connections.emplace_back(
        [&daemon](service::unix_fd conn) { serve_connection(std::move(conn), daemon); },
        std::move(fd));
  }

  // Drain: no new connections (listener closes below), every job stops at
  // its next work item, completed points are already persisted
  // (persist-then-emit), and the pending job_done events go out before
  // the sockets close.
  std::fprintf(stderr, "sociolearnd: draining (%zu jobs cancelled)\n",
               daemon.queue->cancel_all());
  daemon.queue->drain();
  {
    // Readers blocked in read() never see the queue settle; shutdown()
    // hands each one EOF so its session destructor can run.
    const std::lock_guard<std::mutex> lock{daemon.connections_mutex};
    for (const int fd : daemon.connection_fds) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& connection : connections) connection.join();
  std::fprintf(stderr, "sociolearnd: drained, exiting\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flag_set flags{"sociolearnd",
                 "the sociolearn experiment service: a job queue with a "
                 "content-addressed result cache over a Unix-domain socket "
                 "(or stdin/stdout with --once)"};
  flags.add_string("socket", "", "Unix-domain socket path to listen on");
  flags.add_string("store", "", "result store directory (created if missing)");
  flags.add_bool("once", false,
                 "serve one session from stdin/stdout and exit when every "
                 "submitted job has finished (no socket)");
  flags.add_int64("threads", 0,
                  "worker threads for replication shards (0 = all cores); "
                  "results are bit-identical for any value");
  flags.add_int64("max-queued", 0,
                  "bound on jobs waiting to run; submits past it get an "
                  "explicit job_rejected reply (0 = unbounded)");
  flags.add_int64("job-timeout", 0,
                  "default per-job wall-clock budget in seconds; an expired "
                  "job fails but keeps every persisted point (0 = none; a "
                  "request's own 'timeout' field overrides)");
  flags.add_int64("exit-after-points", 0,
                  "crash-test hook: _Exit right after this many computed "
                  "points have been emitted (0 = never)");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;

  const std::string& store_path = flags.get_string("store");
  const std::string& socket_path = flags.get_string("socket");
  const bool once = flags.get_bool("once");
  if (store_path.empty()) {
    std::fprintf(stderr, "sociolearnd: --store is required\n");
    return 2;
  }
  if (once != socket_path.empty()) {  // exactly one of --once / --socket
    std::fprintf(stderr, "sociolearnd: pass either --socket PATH or --once\n");
    return 2;
  }
  if (flags.get_int64("max-queued") < 0 || flags.get_int64("job-timeout") < 0) {
    std::fprintf(stderr, "sociolearnd: --max-queued and --job-timeout must be >= 0\n");
    return 2;
  }

  try {
    failpoints::init_from_env();  // SGL_FAILPOINTS= fault schedules
    for (const std::string& site : failpoints::configured_sites()) {
      std::fprintf(stderr, "sociolearnd: fail point armed: %s\n", site.c_str());
    }
    service::result_store store{store_path};
    if (store.tmp_collected() > 0) {
      std::fprintf(stderr, "sociolearnd: collected %llu stale tmp file(s) from %s\n",
                   static_cast<unsigned long long>(store.tmp_collected()),
                   store_path.c_str());
    }
    service::job_queue queue{store, static_cast<unsigned>(flags.get_int64("threads")),
                             static_cast<std::size_t>(flags.get_int64("max-queued"))};
    daemon_config daemon;
    daemon.queue = &queue;
    daemon.exit_after_points = flags.get_int64("exit-after-points");
    daemon.job_timeout_seconds = static_cast<double>(flags.get_int64("job-timeout"));
    return once ? run_once(daemon) : run_daemon(daemon, socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sociolearnd: %s\n", e.what());
    return 1;
  }
}
