// sociolearn_cli — a command-line driver for the library.
//
//   sociolearn_cli bounds    --m 10 --beta 0.62
//       prints every theorem constant for the given parameters.
//   sociolearn_cli scenarios
//       lists the named scenarios of the registry.
//   sociolearn_cli scenario  --name ring --horizon 400 --reps 50
//       runs a scenario under the Monte-Carlo harness.  The spec can come
//       from the registry (--name) or a text file (--file spec.scn); --set
//       key=value overrides individual fields (e.g. --set params.beta=0.7),
//       --probes chooses the measurements, and --format json emits one
//       machine-readable document per run (spec echo + probe results +
//       timing).
//   sociolearn_cli sweep     --name mixed_baseline --sweep params.beta=0.55:0.75:0.05
//       the same command with one run per grid point (axes are repeatable;
//       the cartesian product is taken, last axis fastest).
//   sociolearn_cli simulate  --engine finite|aggregate|infinite --m ... --beta ...
//       runs one trajectory and writes a per-step CSV to stdout.
//   sociolearn_cli regret    --m ... --beta ... --agents ... --horizon ... --reps ...
//       Monte-Carlo regret estimate with confidence intervals.
//   sociolearn_cli gossip    --nodes ... --rounds ... --drop ...
//       runs the sensor-network protocol standalone and writes the
//       per-round CSV.  Protocol runs under the full Monte-Carlo harness
//       (replications, probes, sweeps) go through the `scenario`/`sweep`
//       subcommands instead: the gossip_* registry scenarios run the
//       netsim-backed protocol engine, configured by `protocol.*` keys
//       (e.g. --sweep protocol.drop_probability=0:0.3:0.1).
//   sociolearn_cli scenario  --name gossip_partition_heal --trace-out t.jsonl --check-trace
//       records one replication's structured netsim trace and replays it
//       against the protocol invariants (analysis/trace_check.h).
//   sociolearn_cli check-trace t.jsonl
//       checks a previously saved trace; exit 1 on any violation.
//   sociolearn_cli submit --socket /tmp/sgl.sock --name ring --sweep params.beta=0.6,0.7
//       submits a job to a running sociolearnd and streams its JSONL
//       events (job_accepted, cache_hit, point_done, job_done) until the
//       job reaches a terminal state; `status` and `cancel` address a job
//       by the id the job_accepted event carried.
//
// Every subcommand accepts --format table|json|csv.  Every run is
// constructed through the scenario layer (scenario/) and executed by the
// probe-based runner (core/experiment.h, core/probe.h); everything is
// deterministic given --seed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace_check.h"
#include "core/experiment.h"
#include "core/probe.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "netsim/trace.h"
#include "protocol/gossip_learner.h"
#include "protocol/protocol_engine.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "scenario/sweep.h"
#include "service/result_store.h"
#include "service/socket.h"
#include "support/failpoint.h"
#include "support/flags.h"
#include "support/json.h"
#include "support/json_parse.h"
#include "support/rng.h"
#include "support/table.h"

namespace {

using namespace sgl;

// --- output format ----------------------------------------------------------

enum class output_format { table, json, csv };

void add_format_flag(flag_set& flags, const std::string& default_format) {
  flags.add_string("format", default_format, "output format: table | json | csv");
}

bool read_format(const flag_set& flags, output_format& format) {
  const std::string& name = flags.get_string("format");
  if (name == "table") {
    format = output_format::table;
  } else if (name == "json") {
    format = output_format::json;
  } else if (name == "csv") {
    format = output_format::csv;
  } else {
    std::fprintf(stderr, "unknown --format '%s' (table | json | csv)\n", name.c_str());
    return false;
  }
  return true;
}

/// Renders a finished table in the chosen format.
void emit_table(const text_table& table, output_format format) {
  switch (format) {
    case output_format::table: table.print(std::cout); break;
    case output_format::json: table.write_json(std::cout); break;
    case output_format::csv: table.write_csv(std::cout); break;
  }
}

// --- shared model flags -----------------------------------------------------

void add_model_flags(flag_set& flags) {
  flags.add_int64("m", 4, "number of options");
  flags.add_double("beta", 0.65, "adopt probability on a good signal");
  flags.add_double("alpha", -1.0, "adopt probability on a bad signal (-1 = 1-beta)");
  flags.add_double("mu", -1.0, "exploration weight (-1 = delta^2/6)");
  flags.add_double("eta-best", 0.85, "quality of the best option");
  flags.add_double("eta-rest", 0.35, "quality of every other option");
  flags.add_int64("seed", 1, "master RNG seed");
}

core::dynamics_params read_params(const flag_set& flags) {
  core::dynamics_params params;
  params.num_options = static_cast<std::size_t>(flags.get_int64("m"));
  params.beta = flags.get_double("beta");
  params.alpha = flags.get_double("alpha");
  params.mu = flags.get_double("mu");
  if (params.mu < 0.0) params.mu = core::theory::mu_cap(params.beta);
  params.validate();
  return params;
}

/// The ad-hoc two-level scenario the model flags describe.
scenario::scenario_spec read_scenario(const flag_set& flags) {
  scenario::scenario_spec spec;
  spec.name = "cli";
  spec.params = read_params(flags);
  spec.environment.etas =
      env::two_level_etas(static_cast<std::size_t>(flags.get_int64("m")),
                          flags.get_double("eta-best"), flags.get_double("eta-rest"));
  return spec;
}

void print_estimate(const core::regret_estimate& est, double bound, output_format format) {
  text_table table{{"measure", "value"}};
  table.add_row({"regret", fmt_pm(est.regret.mean, est.regret.half_width)});
  table.add_row({"average reward",
                 fmt_pm(est.average_reward.mean, est.average_reward.half_width)});
  table.add_row({"avg best-option mass",
                 fmt_pm(est.best_mass.mean, est.best_mass.half_width)});
  table.add_row({"final best-option mass",
                 fmt_pm(est.final_best_mass.mean, est.final_best_mass.half_width)});
  table.add_row({"empty-step fraction", fmt(est.empty_step_fraction, 4)});
  table.add_row({"bound", fmt(bound, 4)});
  table.add_row({"replications", std::to_string(est.replications)});
  emit_table(table, format);
}

int cmd_bounds(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli bounds", "print the paper's constants"};
  add_model_flags(flags);
  add_format_flag(flags, "table");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;
  const core::dynamics_params params = read_params(flags);
  const std::size_t m = params.num_options;
  const double beta = params.beta;

  text_table table{{"constant", "formula", "value"}};
  table.add_row({"delta", "ln(beta/(1-beta))", fmt(params.delta(), 6)});
  table.add_row({"beta cap", "e/(e+1)", fmt(core::theory::beta_cap(), 6)});
  table.add_row({"mu cap", "delta^2/6", fmt(core::theory::mu_cap(beta), 6)});
  table.add_row({"min horizon", "ln(m)/delta^2", fmt(core::theory::min_horizon(m, beta), 2)});
  table.add_row({"Regret_inf bound", "3 delta",
                 fmt(core::theory::infinite_regret_bound(beta), 6)});
  table.add_row({"Regret_N bound", "6 delta",
                 fmt(core::theory::finite_regret_bound(beta), 6)});
  table.add_row({"popularity floor", "mu(1-beta)/(4m)",
                 fmt_sci(core::theory::popularity_floor(m, params.mu, beta), 3)});
  table.add_row({"epoch length", "ln(1/zeta)/delta^2",
                 fmt(core::theory::epoch_length(m, params.mu, beta), 2)});
  for (const double n : {1e3, 1e6}) {
    table.add_row({"delta'' (N=" + fmt_sci(n, 0) + ")",
                   "sqrt(60 m lnN/((1-b)muN))",
                   fmt_sci(core::theory::delta_double_prime(m, params.mu, beta, n), 3)});
  }
  table.add_row({"theorem conditions met", "Thm 4.3/4.4 hypotheses",
                 params.satisfies_theorem_conditions() ? "yes" : "no"});
  emit_table(table, format);
  return 0;
}

int cmd_scenarios(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli scenarios", "list the named scenarios"};
  add_format_flag(flags, "table");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;
  text_table table{{"name", "description"}};
  for (const auto& spec : scenario::all_scenarios()) {
    table.add_row({spec.name, spec.description});
  }
  emit_table(table, format);
  return 0;
}

// --- scenario / sweep -------------------------------------------------------

/// One run's JSON document: spec echo, run config, sweep assignments,
/// probe reports, timing.
void write_run_json(json_writer& json, const scenario::scenario_spec& spec,
                    const core::run_config& config,
                    const std::vector<std::pair<std::string, std::string>>& assignments,
                    const std::vector<core::probe_report>& reports, double seconds) {
  json.begin_object();

  json.key("scenario").begin_object();
  for (const auto& [key, value] : scenario::scenario_fields(spec)) {
    json.key(key).raw(value);  // canonical values are JSON-compatible
  }
  json.end_object();

  json.key("run").begin_object();
  json.key("horizon").value(config.horizon);
  json.key("replications").value(config.replications);
  json.key("seed").value(config.seed);
  json.key("threads").value(static_cast<std::uint64_t>(config.threads));
  json.end_object();

  json.key("sweep").begin_object();
  for (const auto& [key, value] : assignments) {
    if (const std::optional<double> number = parse_full_double(value)) {
      json.key(key).value(*number);
    } else {
      json.key(key).value(value);
    }
  }
  json.end_object();

  json.key("probes").begin_array();
  for (const auto& report : reports) {
    json.begin_object();
    json.key("probe").value(report.probe);
    json.key("scalars").begin_object();
    for (const auto& scalar : report.scalars) {
      json.key(scalar.key).begin_object();
      json.key("value").value(scalar.value);
      if (scalar.has_ci) json.key("half_width").value(scalar.half_width);
      json.end_object();
    }
    json.end_object();
    if (!report.series.empty()) {
      json.key("series").begin_object();
      for (const auto& series : report.series) {
        json.key(series.key).begin_array();
        for (const double v : series.values) json.value(v);
        json.end_array();
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();

  json.key("timing").begin_object();
  json.key("seconds").value(seconds);
  json.end_object();

  json.end_object();
}

/// Legacy per-step CSV (the --curves output shape predating probes).
void print_curves_csv(const core::trajectory_probe& curves) {
  std::printf("t,running_regret,best_mass,min_popularity\n");
  for (std::size_t t = 0; t < curves.best_mass().length(); ++t) {
    std::printf("%zu,%.6f,%.6f,%.6f\n", t + 1, curves.running_regret().mean(t),
                curves.best_mass().mean(t), curves.min_popularity().mean(t));
  }
}

// --- trace capture / invariant checking -------------------------------------

/// Renders a trace_check_result and returns the process exit code (0 when
/// every invariant held, 1 otherwise).
int report_trace_check(const analysis::trace_check_result& result,
                       output_format format, const std::string& source) {
  if (format == output_format::json) {
    json_writer json{std::cout};
    json.begin_object();
    json.key("trace").value(source);
    json.key("records_checked").value(static_cast<std::uint64_t>(result.records_checked));
    json.key("ok").value(result.ok());
    json.key("skipped").begin_array();
    for (const std::string& name : result.skipped) json.value(name);
    json.end_array();
    json.key("violations").begin_array();
    for (const analysis::trace_violation& v : result.violations) {
      json.begin_object();
      json.key("invariant").value(v.invariant);
      json.key("time").value(v.time);
      json.key("node").value(static_cast<std::uint64_t>(v.node));
      json.key("record_index").value(static_cast<std::uint64_t>(v.record_index));
      json.key("detail").value(v.detail);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::cout << '\n';
  } else {
    for (const analysis::trace_violation& v : result.violations) {
      std::printf("violation %s t=%.6g node=%u record=%zu: %s\n", v.invariant.c_str(),
                  v.time, v.node, v.record_index, v.detail.c_str());
    }
    std::printf("%s: %zu records, %zu violation%s", source.c_str(),
                result.records_checked, result.violations.size(),
                result.violations.size() == 1 ? "" : "s");
    if (!result.skipped.empty()) {
      std::printf(" (skipped after ring eviction:");
      for (const std::string& name : result.skipped) std::printf(" %s", name.c_str());
      std::printf(")");
    }
    std::printf("\n");
  }
  return result.ok() ? 0 : 1;
}

/// Runs replication 0 of the harness — the exact streams
/// rng::from_stream(seed, 0)/(seed, 1) the runner would use — with trace
/// recording forced on, then writes and/or checks the captured trace.
int run_traced_replication(scenario::scenario_spec spec, std::uint64_t horizon,
                           std::uint64_t seed, const std::string& trace_out,
                           bool check, output_format format) {
  spec.faults.record = true;  // force recording whatever the spec says
  scenario::validate_spec(spec);
  if (scenario::resolved_engine(spec) != scenario::engine_kind::protocol) {
    std::fprintf(stderr,
                 "scenario '%s' does not run the protocol engine; structured "
                 "traces come from netsim (set engine = \"protocol\")\n",
                 spec.name.c_str());
    return 2;
  }

  const auto engine = scenario::make_engine(spec)();
  const auto environment = scenario::make_environment(spec.environment)();
  rng reward_gen = rng::from_stream(seed, 0);
  rng process_gen = rng::from_stream(seed, 1);
  std::vector<std::uint8_t> r(spec.params.num_options);
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    environment->sample(t, reward_gen, r);
    engine->step(r, process_gen);
  }

  const auto* proto = dynamic_cast<const protocol::protocol_engine*>(engine.get());
  if (proto == nullptr || proto->recorder() == nullptr) {
    std::fprintf(stderr, "internal: the protocol engine produced no trace recorder\n");
    return 1;
  }
  const netsim::trace_recorder& recorder = *proto->recorder();
  analysis::trace_metadata meta;
  meta.num_nodes = spec.num_agents;
  meta.num_options = spec.params.num_options;
  meta.max_retries = static_cast<std::uint32_t>(spec.protocol.max_retries);
  meta.round_interval = spec.protocol.round_interval;
  meta.rounds = horizon;
  meta.seed = seed;
  meta.evicted = recorder.evicted();
  const std::vector<netsim::trace_record> records = recorder.snapshot();

  if (!trace_out.empty()) {
    if (trace_out == "-") {
      analysis::write_trace(std::cout, meta, records);
    } else {
      std::ofstream out{trace_out};
      if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n", trace_out.c_str());
        return 2;
      }
      analysis::write_trace(out, meta, records);
      std::fprintf(stderr, "wrote %zu trace records to %s\n", records.size(),
                   trace_out.c_str());
    }
  }
  if (!check) return 0;
  return report_trace_check(analysis::check_trace(meta, records), format, spec.name);
}

int cmd_check_trace(int argc, const char* const* argv) {
  // The trace file is positional (`check-trace trace.jsonl`); everything
  // else goes through the flag parser.
  std::string file;
  std::vector<const char*> rest;
  rest.push_back(argc > 0 ? argv[0] : "check-trace");
  for (int i = 1; i < argc; ++i) {
    if (file.empty() && argv[i][0] != '-') {
      file = argv[i];
      continue;
    }
    rest.push_back(argv[i]);
  }
  flag_set flags{"sociolearn_cli check-trace <file>",
                 "replay a recorded JSONL trace (scenario --trace-out) against "
                 "the protocol invariants; exit 1 on any violation"};
  add_format_flag(flags, "table");
  if (flags.parse(static_cast<int>(rest.size()), rest.data()) != parse_status::ok) {
    return 2;
  }
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;
  if (file.empty()) {
    std::fprintf(stderr, "check-trace: no trace file given "
                         "(usage: sociolearn_cli check-trace trace.jsonl)\n");
    return 2;
  }

  analysis::parsed_trace trace;
  if (file == "-") {
    trace = analysis::read_trace(std::cin);
  } else {
    std::ifstream input{file};
    if (!input) {
      std::fprintf(stderr, "cannot open trace file '%s'\n", file.c_str());
      return 2;
    }
    trace = analysis::read_trace(input);
  }
  return report_trace_check(analysis::check_trace(trace.meta, trace.records), format,
                            file);
}

int cmd_scenario(int argc, const char* const* argv, bool sweep_command) {
  flag_set flags{sweep_command ? "sociolearn_cli sweep" : "sociolearn_cli scenario",
                 "run a scenario: registry or file base, overrides, sweeps, probes"};
  flags.add_string("name", "",
                   "registry scenario name (see 'scenarios'); takes precedence "
                   "over --file");
  flags.add_string("file", "", "scenario spec file ('key = value' lines, see DESIGN.md)");
  flags.add_string_list("set", "field override key=value, applied last (repeatable)");
  flags.add_string_list("sweep",
                        "sweep axis key=lo:hi:step or key=v1,v2,... (repeatable; "
                        "cartesian product, last axis fastest)");
  flags.add_string("probes", "",
                   "comma-separated probe specs, e.g. 'regret,hitting_time(eps=0.1)' "
                   "(default: the scenario's probes, else regret)");
  add_format_flag(flags, "table");
  flags.add_int64("horizon", 400, "steps T");
  flags.add_int64("reps", 100, "replications");
  flags.add_int64("seed", 1, "master RNG seed");
  flags.add_int64("threads", 0, "replication worker threads (0 = all)");
  flags.add_int64("engine-threads", -1,
                  "threads inside one network-mode replication (0 = all, "
                  "-1 = keep the scenario's setting); bit-identical results "
                  "for any value");
  flags.add_int64("agents", -1, "override the scenario's population (-1 = keep)");
  flags.add_string("kernel", "",
                   "step kernel for the agent-based engine: auto | scalar | "
                   "simd (empty = keep the scenario's setting)");
  flags.add_bool("curves", false, "emit per-step curves as CSV instead of the table");
  flags.add_bool("no-reuse", false,
                 "rebuild the engine/environment every replication instead of "
                 "reset()-reusing one per worker (A/B check; bit-identical "
                 "results, slower)");
  flags.add_string("trace-out", "",
                   "record replication 0's structured netsim trace to this "
                   "JSONL file ('-' = stdout; protocol engine only)");
  flags.add_bool("check-trace", false,
                 "record replication 0 and replay its trace against the "
                 "protocol invariants (exit 1 on any violation)");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;

  // Base spec, by documented precedence: file < registry < --set.  A
  // registry spec is a complete value, so when --name is given the file
  // could never contribute and is not even opened.
  scenario::scenario_spec spec;
  const std::string& file = flags.get_string("file");
  std::string name = flags.get_string("name");
  if (file.empty() && name.empty()) name = "quickstart";
  if (!name.empty()) {
    spec = scenario::get_scenario(name);
  } else {
    std::ifstream input{file};
    if (!input) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << input.rdbuf();
    spec = scenario::parse_scenario(buffer.str());
  }
  for (const std::string& assignment : flags.get_string_list("set")) {
    scenario::apply_override(spec, assignment);
  }

  // Legacy convenience overrides, kept on top of --set.
  if (flags.get_int64("engine-threads") >= 0) {
    spec.engine_threads = static_cast<unsigned>(flags.get_int64("engine-threads"));
  }
  if (const std::string& kernel = flags.get_string("kernel"); !kernel.empty()) {
    scenario::apply_override(spec, "kernel", kernel);
  }
  if (flags.get_int64("agents") >= 0) {
    const scenario::engine_kind kind = scenario::resolved_engine(spec);
    if (kind == scenario::engine_kind::infinite ||
        kind == scenario::engine_kind::grouped) {
      std::fprintf(stderr,
                   "scenario '%s' runs the %s engine; --agents does not apply "
                   "(the %s carries the population)\n",
                   spec.name.c_str(),
                   kind == scenario::engine_kind::infinite ? "infinite" : "grouped",
                   kind == scenario::engine_kind::infinite ? "mean field" : "group mix");
      return 2;
    }
    if (flags.get_int64("agents") == 0) {
      // num_agents = 0 would silently re-resolve auto-select specs to the
      // mean-field engine; a scenario keeps its formulation.
      std::fprintf(stderr,
                   "--agents must be >= 1 (scenario '%s' is population-based; "
                   "run an infinite scenario for the mean field)\n",
                   spec.name.c_str());
      return 2;
    }
    spec.num_agents = static_cast<std::uint64_t>(flags.get_int64("agents"));
  }

  // Trace capture short-circuits the harness: one dedicated recorded
  // replication instead of the Monte-Carlo run.
  const std::string& trace_out = flags.get_string("trace-out");
  if (!trace_out.empty() || flags.get_bool("check-trace")) {
    if (sweep_command || !flags.get_string_list("sweep").empty()) {
      std::fprintf(stderr,
                   "--trace-out/--check-trace record a single replication; "
                   "they do not combine with a sweep\n");
      return 2;
    }
    if (const std::string conflict = analysis::stdout_trace_conflict(
            trace_out, flags.get_bool("check-trace"));
        !conflict.empty()) {
      std::fprintf(stderr, "%s\n", conflict.c_str());
      return 2;
    }
    return run_traced_replication(std::move(spec),
                                  static_cast<std::uint64_t>(flags.get_int64("horizon")),
                                  static_cast<std::uint64_t>(flags.get_int64("seed")),
                                  trace_out, flags.get_bool("check-trace"), format);
  }

  core::run_config config;
  config.horizon = static_cast<std::uint64_t>(flags.get_int64("horizon"));
  config.replications = static_cast<std::uint64_t>(flags.get_int64("reps"));
  config.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  config.threads = static_cast<unsigned>(flags.get_int64("threads"));
  config.collect_curves = flags.get_bool("curves");
  config.reuse = !flags.get_bool("no-reuse");

  // Probe selection: --probes > the spec's probes > regret; --curves
  // additionally wants the trajectory probe.
  std::vector<std::string> probe_specs =
      core::split_probe_specs(flags.get_string("probes"));
  if (probe_specs.empty()) probe_specs = spec.probes;
  if (probe_specs.empty()) probe_specs = {"regret"};
  if (config.collect_curves) {
    bool have_trajectory = false;
    for (const std::string& p : probe_specs) {
      if (p.rfind("trajectory", 0) == 0) have_trajectory = true;
    }
    if (!have_trajectory) probe_specs.emplace_back("trajectory");
  }

  // The sweep grid; one empty point when no axes were given.
  std::vector<scenario::sweep_axis> axes;
  for (const std::string& axis : flags.get_string_list("sweep")) {
    axes.push_back(scenario::parse_sweep_axis(axis));
  }
  const auto grid = scenario::expand_sweep(axes);
  // The sweep output contract (one array wrapping the run documents) is a
  // property of the subcommand, not of how many axes happened to be given.
  const bool sweeping = sweep_command || !axes.empty();

  // Per-step curves for several grid points cannot be one flat CSV (no
  // column identifies the run); JSON carries them per document.
  if (config.collect_curves && format == output_format::csv && grid.size() > 1) {
    std::fprintf(stderr,
                 "--curves with a multi-point sweep needs --format json (one "
                 "document per run); flat CSV cannot label the runs\n");
    return 2;
  }

  // Run the whole grid through the flattened sweep scheduler: every point
  // is overridden and validated before any replication starts, all
  // (point × shard) work items drain over the shared worker pool, engines
  // are reset()-reused per point, and points with the same topology key
  // share one built graph.  Per-point results are bit-identical to the
  // historical one-point-at-a-time loop (tests/harness_determinism_test).
  // Output begins only after the runs finish, so an error deep in the grid
  // can no longer leave a partial JSON array on stdout.
  const std::vector<scenario::sweep_point_result> results =
      scenario::run_sweep(spec, grid, config, probe_specs);

  json_writer json{std::cout};
  if (format == output_format::json && sweeping) json.begin_array();
  bool csv_header_done = false;
  const auto csv_row = [](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : ",", csv_escape(cells[c]).c_str());
    }
    std::printf("\n");
  };

  for (std::size_t run_index = 0; run_index < results.size(); ++run_index) {
    const scenario::sweep_point_result& point = results[run_index];
    const auto& assignments = point.assignments;
    const scenario::scenario_spec& run_spec = point.spec;
    const core::probe_list& merged = point.probes;
    // In-flight wall clock of this point; under the flattened schedule
    // points overlap, so the values can sum past the sweep's elapsed time.
    const double seconds = point.seconds;
    const std::vector<core::probe_report> reports = core::collect_reports(merged);

    // --curves keeps its historical output shape outside JSON: the per-step
    // CSV, for the table and csv formats alike.
    if (config.collect_curves && format != output_format::json) {
      if (sweeping) {
        std::printf("# run %zu/%zu:", run_index + 1, results.size());
        for (const auto& [key, value] : assignments) {
          std::printf(" %s=%s", key.c_str(), value.c_str());
        }
        std::printf("\n");
      }
      for (const auto& probe : merged) {
        if (const auto* curves = dynamic_cast<const core::trajectory_probe*>(probe.get())) {
          print_curves_csv(*curves);
        }
      }
      continue;
    }

    switch (format) {
      case output_format::json:
        write_run_json(json, run_spec, config, assignments, reports, seconds);
        if (!sweeping) std::cout << '\n';
        break;
      case output_format::csv: {
        if (!csv_header_done) {
          std::vector<std::string> header{"scenario"};
          for (const auto& axis : axes) header.push_back(axis.key);
          for (const auto& report : reports) {
            for (const auto& scalar : report.scalars) {
              header.push_back(report.probe + "." + scalar.key);
            }
          }
          header.emplace_back("seconds");
          csv_row(header);
          csv_header_done = true;
        }
        std::vector<std::string> row{run_spec.name};
        for (const auto& [key, value] : assignments) row.push_back(value);
        for (const auto& report : reports) {
          for (const auto& scalar : report.scalars) {
            row.push_back(json_number(scalar.value));
          }
        }
        row.push_back(json_number(seconds));
        csv_row(row);
        break;
      }
      case output_format::table: {
        if (sweeping) {
          std::printf("# run %zu/%zu:", run_index + 1, results.size());
          for (const auto& [key, value] : assignments) {
            std::printf(" %s=%s", key.c_str(), value.c_str());
          }
          std::printf("\n");
        }
        std::printf("scenario: %s\n%s\n\n", run_spec.name.c_str(),
                    run_spec.description.c_str());
        for (const auto& probe : merged) {
          if (const auto* regret = dynamic_cast<const core::regret_probe*>(probe.get())) {
            // The 3δ vs 6δ bound follows the engine actually run, not N.
            print_estimate(
                core::to_regret_estimate(*regret),
                scenario::resolved_engine(run_spec) == scenario::engine_kind::infinite
                    ? core::theory::infinite_regret_bound(run_spec.params.beta)
                    : core::theory::finite_regret_bound(run_spec.params.beta),
                format);
            continue;
          }
          if (dynamic_cast<const core::trajectory_probe*>(probe.get()) != nullptr) {
            continue;  // curves are CSV-only in table mode
          }
          const core::probe_report report = probe->report();
          text_table table{{"probe metric", "value"}};
          for (const auto& scalar : report.scalars) {
            table.add_row({report.probe + "." + scalar.key,
                           scalar.has_ci ? fmt_pm(scalar.value, scalar.half_width)
                                         : fmt(scalar.value, 4)});
          }
          // Short series (per-option histograms etc.) render inline; long
          // ones (per-step curves) only fit the JSON output.
          constexpr std::size_t k_series_rows = 32;
          for (const auto& series : report.series) {
            if (series.values.size() > k_series_rows) {
              table.add_row({report.probe + "." + series.key,
                             std::to_string(series.values.size()) +
                                 " points (use --format json)"});
              continue;
            }
            for (std::size_t i = 0; i < series.values.size(); ++i) {
              table.add_row({report.probe + "." + series.key + "[" + std::to_string(i) + "]",
                             fmt(series.values[i], 4)});
            }
          }
          std::printf("\n");
          table.print(std::cout);
        }
        std::fprintf(stderr, "elapsed: %.3f s\n", seconds);
        break;
      }
    }
  }

  if (format == output_format::json && sweeping) {
    json.end_array();
    std::cout << '\n';
  }
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli simulate", "run one trajectory, CSV to stdout"};
  add_model_flags(flags);
  add_format_flag(flags, "csv");
  flags.add_string("engine", "finite", "finite | aggregate | infinite");
  flags.add_int64("agents", 1000, "population size N (finite engines)");
  flags.add_int64("horizon", 200, "steps T");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;
  const auto horizon = static_cast<std::uint64_t>(flags.get_int64("horizon"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  const std::string engine_name = flags.get_string("engine");

  scenario::scenario_spec spec = read_scenario(flags);
  spec.num_agents = static_cast<std::uint64_t>(flags.get_int64("agents"));
  if (engine_name == "infinite") {
    spec.engine = scenario::engine_kind::infinite;
    spec.num_agents = 0;
  } else if (engine_name == "aggregate") {
    spec.engine = scenario::engine_kind::aggregate;
  } else if (engine_name == "finite") {
    spec.engine = scenario::engine_kind::agent_based;
  } else {
    std::fprintf(stderr, "unknown engine '%s' (finite | aggregate | infinite)\n",
                 engine_name.c_str());
    return 2;
  }

  // One loop for every engine: the dynamics_engine interface is the point.
  const auto engine = scenario::make_engine(spec)();
  const auto environment = scenario::make_environment(spec.environment)();
  rng reward_gen = rng::from_stream(seed, 0);
  rng process_gen = rng::from_stream(seed, 1);
  std::vector<std::uint8_t> r(spec.params.num_options);

  // The default CSV path streams row by row — a trajectory can be millions
  // of steps; only the aligned/JSON renderings buffer the table.
  const bool streaming = format == output_format::csv;
  std::vector<std::string> header{"t"};
  for (std::size_t j = 0; j < spec.params.num_options; ++j) {
    header.push_back("q" + std::to_string(j));
  }
  header.emplace_back("group_reward");
  std::optional<text_table> table;
  if (streaming) {
    for (std::size_t c = 0; c < header.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : ",", header[c].c_str());
    }
    std::printf("\n");
  } else {
    table.emplace(header);
  }
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    environment->sample(t, reward_gen, r);
    engine->step(r, process_gen);
    const auto q = engine->popularity();
    double reward = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j) reward += q[j] * r[j];
    if (streaming) {
      std::printf("%llu", static_cast<unsigned long long>(t));
      for (const double x : q) std::printf(",%.6f", x);
      std::printf(",%.6f\n", reward);
      continue;
    }
    std::vector<std::string> row{std::to_string(t)};
    for (const double x : q) row.push_back(fmt(x, 6));
    row.push_back(fmt(reward, 6));
    table->add_row(std::move(row));
  }
  if (table) emit_table(*table, format);
  return 0;
}

int cmd_regret(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli regret", "Monte-Carlo regret estimate"};
  add_model_flags(flags);
  add_format_flag(flags, "table");
  flags.add_int64("agents", 1000, "population size N (0 = infinite dynamics)");
  flags.add_int64("horizon", 200, "steps T");
  flags.add_int64("reps", 200, "replications");
  flags.add_int64("threads", 0, "worker threads (0 = all)");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;

  scenario::scenario_spec spec = read_scenario(flags);
  spec.num_agents = static_cast<std::uint64_t>(flags.get_int64("agents"));

  core::run_config config;
  config.horizon = static_cast<std::uint64_t>(flags.get_int64("horizon"));
  config.replications = static_cast<std::uint64_t>(flags.get_int64("reps"));
  config.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  config.threads = static_cast<unsigned>(flags.get_int64("threads"));

  const core::run_result result = scenario::run(spec, config);
  print_estimate(result.scalars,
                 spec.num_agents == 0
                     ? core::theory::infinite_regret_bound(spec.params.beta)
                     : core::theory::finite_regret_bound(spec.params.beta),
                 format);
  return 0;
}

int cmd_gossip(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli gossip", "run the sensor-network protocol, CSV out"};
  add_model_flags(flags);
  add_format_flag(flags, "csv");
  flags.add_int64("nodes", 100, "number of nodes");
  flags.add_int64("rounds", 200, "protocol rounds");
  flags.add_double("drop", 0.0, "packet loss probability");
  flags.add_bool("sticky", false, "keep previous choice instead of sitting out");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;

  protocol::gossip_params gossip;
  gossip.dynamics = read_params(flags);
  gossip.sticky = flags.get_bool("sticky");
  protocol::signal_oracle oracle{
      env::two_level_etas(static_cast<std::size_t>(flags.get_int64("m")),
                          flags.get_double("eta-best"), flags.get_double("eta-rest")),
      static_cast<std::uint64_t>(flags.get_int64("seed")) + 1};
  protocol::gossip_run_config config;
  config.num_nodes = static_cast<std::size_t>(flags.get_int64("nodes"));
  config.rounds = static_cast<std::uint64_t>(flags.get_int64("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  config.links.drop_probability = flags.get_double("drop");

  const protocol::gossip_run_result result =
      protocol::run_gossip_experiment(gossip, oracle, config);
  if (format == output_format::csv) {
    // Default path streams: a long protocol run should not be buffered as
    // row strings first.
    std::printf("round,best_fraction,committed_fraction\n");
    for (std::size_t t = 0; t < result.best_fraction.size(); ++t) {
      std::printf("%zu,%.6f,%.6f\n", t + 1, result.best_fraction[t],
                  result.committed_fraction[t]);
    }
  } else {
    text_table table{{"round", "best_fraction", "committed_fraction"}};
    for (std::size_t t = 0; t < result.best_fraction.size(); ++t) {
      table.add_row({std::to_string(t + 1), fmt(result.best_fraction[t], 6),
                     fmt(result.committed_fraction[t], 6)});
    }
    emit_table(table, format);
  }
  std::fprintf(stderr, "messages=%llu dropped=%llu bytes=%llu avg_regret=%.4f\n",
               static_cast<unsigned long long>(result.net.messages_sent),
               static_cast<unsigned long long>(result.net.messages_dropped),
               static_cast<unsigned long long>(result.net.bytes_sent()),
               result.average_regret);
  return 0;
}

// --- service client (sociolearnd) -------------------------------------------

/// The event lines a request elicits are passed through to stdout
/// verbatim — the client adds no framing of its own, so piping `submit`
/// output to a file yields the same JSONL the daemon spoke.

/// classify_event verdicts: negative = keep streaming, 0/1 = final exit
/// code, k_retryable = the request should be retried (backpressure).
constexpr int k_retryable = 100;

/// Classifies one event line into "keep reading" (-1), a final exit code,
/// or k_retryable.  Unparseable lines are the daemon's bug, not ours:
/// surface and keep going.
int classify_event(const std::string& line) {
  json_value event;
  try {
    event = parse_json(line);
  } catch (const std::exception&) {
    return -1;
  }
  const json_value* kind = event.find("event");
  if (kind == nullptr || !kind->is_string()) return -1;
  if (kind->text == "error") return 1;
  if (kind->text == "job_rejected") return k_retryable;  // backpressure, not failure
  if (kind->text == "job_done") {
    const json_value* status = event.find("status");
    return (status != nullptr && status->is_string() && status->text == "done") ? 0 : 1;
  }
  if (kind->text == "status") return 0;
  if (kind->text == "cancel_result") {
    const json_value* ok = event.find("cancelled");
    return (ok != nullptr && ok->type == json_value::kind::boolean && ok->boolean) ? 0 : 1;
  }
  return -1;  // job_accepted / cache_hit / point_done: keep streaming
}

/// One connect + request + event stream.  Returns the final exit code, or
/// k_retryable when the daemon was unreachable, rejected the job
/// (queue_full backpressure), or died before a terminal event.
int service_exchange_once(const std::string& socket_path, const std::string& request) {
  std::optional<service::unix_fd> fd;
  try {
    fd.emplace(service::unix_connect(socket_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return k_retryable;
  }
  if (!service::write_all(fd->get(), request + "\n")) {
    std::fprintf(stderr, "connection closed while sending the request\n");
    return k_retryable;
  }
  service::line_reader reader;
  while (std::optional<std::string> line = reader.next_line(fd->get())) {
    std::cout << *line << '\n' << std::flush;
    const int verdict = classify_event(*line);
    if (verdict >= 0) return verdict;
  }
  // A vanished daemon mid-stream: every acknowledged point is persisted
  // on its side (persist-then-emit), so resubmitting the identical
  // request is safe — the points come back as cache hits.
  std::fprintf(stderr, "connection closed before a terminal event (daemon died?)\n");
  return k_retryable;
}

/// Deterministic jitter: the same (request, attempt) always waits the same
/// extra milliseconds, so a scripted torture run reproduces exactly, while
/// distinct requests still decorrelate.
std::uint64_t backoff_jitter_ms(const std::string& request, int attempt,
                                std::uint64_t spread_ms) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : request) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  hash = (hash ^ static_cast<std::uint64_t>(attempt)) * 0x100000001b3ULL;
  return spread_ms == 0 ? 0 : hash % spread_ms;
}

/// Sends one request line and streams events until one is terminal,
/// retrying retryable outcomes with exponential backoff + deterministic
/// jitter.  `retries` is the number of *re*-attempts after the first try.
int service_exchange(const std::string& socket_path, const std::string& request,
                     int retries = 0, std::uint64_t base_ms = 100) {
  for (int attempt = 0;; ++attempt) {
    const int verdict = service_exchange_once(socket_path, request);
    if (verdict != k_retryable) return verdict;
    if (attempt >= retries) {
      std::fprintf(stderr, "giving up after %d attempt%s\n", attempt + 1,
                   attempt == 0 ? "" : "s");
      return 1;
    }
    const std::uint64_t delay =
        (base_ms << std::min(attempt, 16)) + backoff_jitter_ms(request, attempt, base_ms);
    std::fprintf(stderr, "retrying in %llu ms (attempt %d of %d)\n",
                 static_cast<unsigned long long>(delay), attempt + 2, retries + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds{delay});
  }
}

int cmd_submit(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli submit",
                 "submit a scenario or sweep to a running sociolearnd and "
                 "stream its JSONL events until the job finishes"};
  flags.add_string("socket", "", "sociolearnd socket path (required)");
  flags.add_string("name", "",
                   "registry scenario name (see 'scenarios'); takes precedence "
                   "over --file");
  flags.add_string("file", "", "scenario spec file ('key = value' lines, see DESIGN.md)");
  flags.add_string_list("set", "field override key=value, applied last (repeatable)");
  flags.add_string_list("sweep",
                        "sweep axis key=lo:hi:step or key=v1,v2,... (repeatable; "
                        "cartesian product, last axis fastest)");
  flags.add_string("probes", "",
                   "comma-separated probe specs (default: the scenario's probes, "
                   "else regret)");
  flags.add_int64("horizon", 400, "steps T");
  flags.add_int64("reps", 100, "replications");
  flags.add_int64("seed", 1, "master RNG seed");
  flags.add_int64("priority", 0, "queue priority (higher runs first)");
  flags.add_int64("timeout", 0, "per-job wall-clock budget in seconds (0 = none)");
  flags.add_int64("retries", 4,
                  "re-attempts after connect failure, job_rejected backpressure, "
                  "or a daemon that died mid-stream; resubmission is idempotent "
                  "(persisted points return as cache hits)");
  flags.add_int64("retry-base-ms", 100,
                  "backoff base: attempt k waits base*2^k ms plus deterministic "
                  "jitter");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  const std::string& socket_path = flags.get_string("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "submit: --socket is required\n");
    return 2;
  }
  if (flags.get_int64("retries") < 0 || flags.get_int64("retry-base-ms") < 0 ||
      flags.get_int64("timeout") < 0) {
    std::fprintf(stderr, "submit: --retries, --retry-base-ms and --timeout must be >= 0\n");
    return 2;
  }

  // Base spec, by the same precedence as `scenario`: file < registry <
  // --set.  Overrides are applied locally and the *canonical serialized
  // form* is sent, so what the daemon digests is exactly what a local run
  // of the same flags would execute.
  scenario::scenario_spec spec;
  const std::string& file = flags.get_string("file");
  std::string name = flags.get_string("name");
  if (file.empty() && name.empty()) name = "quickstart";
  if (!name.empty()) {
    spec = scenario::get_scenario(name);
  } else {
    std::ifstream input{file};
    if (!input) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << input.rdbuf();
    spec = scenario::parse_scenario(buffer.str());
  }
  for (const std::string& assignment : flags.get_string_list("set")) {
    scenario::apply_override(spec, assignment);
  }

  std::ostringstream request;
  json_writer json{request, /*indent=*/0};
  json.begin_object();
  json.key("op").value("submit");
  json.key("spec").value(scenario::serialize_scenario(spec));
  if (!flags.get_string_list("sweep").empty()) {
    json.key("sweep").begin_array();
    for (const std::string& axis : flags.get_string_list("sweep")) json.value(axis);
    json.end_array();
  }
  json.key("horizon").value(static_cast<std::uint64_t>(flags.get_int64("horizon")));
  json.key("replications").value(static_cast<std::uint64_t>(flags.get_int64("reps")));
  json.key("seed").value(static_cast<std::uint64_t>(flags.get_int64("seed")));
  const std::vector<std::string> probes =
      core::split_probe_specs(flags.get_string("probes"));
  if (!probes.empty()) {
    json.key("probes").begin_array();
    for (const std::string& probe : probes) json.value(probe);
    json.end_array();
  }
  json.key("priority").value(flags.get_int64("priority"));
  if (flags.get_int64("timeout") > 0) {
    json.key("timeout").value(static_cast<double>(flags.get_int64("timeout")));
  }
  json.end_object();
  return service_exchange(socket_path, request.str(),
                          static_cast<int>(flags.get_int64("retries")),
                          static_cast<std::uint64_t>(flags.get_int64("retry-base-ms")));
}

/// `status` and `cancel` share everything but the op name.
int cmd_job_op(const char* op, int argc, const char* const* argv) {
  flag_set flags{std::string{"sociolearn_cli "} + op,
                 std::string{op} + " a sociolearnd job by id"};
  flags.add_string("socket", "", "sociolearnd socket path (required)");
  flags.add_int64("job", 0, "job id (from the job_accepted event)");
  flags.add_int64("retries", 0, "re-attempts after a connect failure");
  flags.add_int64("retry-base-ms", 100, "backoff base in milliseconds");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  const std::string& socket_path = flags.get_string("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "%s: --socket is required\n", op);
    return 2;
  }
  if (flags.get_int64("job") <= 0) {
    std::fprintf(stderr, "%s: --job must be a positive job id\n", op);
    return 2;
  }
  std::ostringstream request;
  json_writer json{request, /*indent=*/0};
  json.begin_object();
  json.key("op").value(op);
  json.key("job").value(static_cast<std::uint64_t>(flags.get_int64("job")));
  json.end_object();
  return service_exchange(socket_path, request.str(),
                          static_cast<int>(std::max<std::int64_t>(flags.get_int64("retries"), 0)),
                          static_cast<std::uint64_t>(
                              std::max<std::int64_t>(flags.get_int64("retry-base-ms"), 0)));
}

// --- store audit ------------------------------------------------------------

/// `sociolearn_cli fsck --store DIR [--repair]` — walk the result store,
/// verify every object's checksum trailer, list tmp files orphaned by dead
/// writers, and (with --repair) quarantine/remove them.  Exit 0 when the
/// store is clean, 1 when anything was found (even if repaired).
int cmd_fsck(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli fsck",
                 "audit a sociolearnd result store: verify object checksums, "
                 "find orphaned tmp files, report quarantine"};
  flags.add_string("store", "", "result store directory (required)");
  flags.add_bool("repair", false,
                 "quarantine corrupt objects and remove orphaned tmp files");
  add_format_flag(flags, "table");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  output_format format = output_format::table;
  if (!read_format(flags, format)) return 2;
  const std::string& store_path = flags.get_string("store");
  if (store_path.empty()) {
    std::fprintf(stderr, "fsck: --store is required\n");
    return 2;
  }
  if (!std::filesystem::is_directory(store_path)) {
    // Opening would *create* an empty store here, and a typo'd path would
    // audit it as spotlessly clean.  Auditing demands an existing store.
    std::fprintf(stderr, "fsck: no store at '%s'\n", store_path.c_str());
    return 2;
  }

  // gc_stale_tmp off: fsck *reports* orphans; only --repair removes them.
  service::store_options options;
  options.gc_stale_tmp = false;
  service::result_store store{store_path, options};
  const service::fsck_report report = store.fsck(flags.get_bool("repair"));

  if (format == output_format::json) {
    json_writer json{std::cout};
    json.begin_object();
    json.key("store").value(store_path);
    json.key("clean").value(report.clean());
    json.key("objects_ok").value(report.objects_ok);
    json.key("corrupt").begin_array();
    for (const std::string& path : report.corrupt) json.value(path);
    json.end_array();
    json.key("orphaned_tmp").begin_array();
    for (const std::string& path : report.orphaned_tmp) json.value(path);
    json.end_array();
    json.key("quarantined").value(report.quarantined);
    json.key("repaired").value(report.repaired);
    json.end_object();
    std::cout << '\n';
  } else {
    for (const std::string& path : report.corrupt) {
      std::printf("corrupt: %s%s\n", path.c_str(),
                  report.repaired ? " (moved to quarantine/)" : "");
    }
    for (const std::string& path : report.orphaned_tmp) {
      std::printf("orphaned tmp: %s%s\n", path.c_str(),
                  report.repaired ? " (removed)" : "");
    }
    std::printf("%s: %llu object%s ok, %zu corrupt, %zu orphaned tmp, "
                "%llu quarantined — %s\n",
                store_path.c_str(),
                static_cast<unsigned long long>(report.objects_ok),
                report.objects_ok == 1 ? "" : "s", report.corrupt.size(),
                report.orphaned_tmp.size(),
                static_cast<unsigned long long>(report.quarantined),
                report.clean() ? "clean" : "issues found");
  }
  return report.clean() ? 0 : 1;
}

void print_usage() {
  std::printf(
      "sociolearn_cli — drive the distributed learning dynamics from the shell\n\n"
      "subcommands:\n"
      "  bounds     print every theorem constant for given parameters\n"
      "  scenarios  list the named scenarios of the registry\n"
      "  scenario   run a scenario (--name or --file, --set overrides, --probes)\n"
      "  sweep      same as scenario, one run per --sweep grid point\n"
      "  simulate   run one trajectory (finite/aggregate/infinite), CSV to stdout\n"
      "  regret     Monte-Carlo regret estimate with confidence intervals\n"
      "  gossip     run the gossip protocol standalone, per-round CSV (the\n"
      "             gossip_* scenarios run it under the full harness with\n"
      "             probes/sweeps via protocol.* keys)\n"
      "  check-trace  replay a recorded JSONL trace (scenario --trace-out)\n"
      "             against the protocol invariants; exit 1 on violations\n"
      "  submit     submit a scenario/sweep to a running sociolearnd\n"
      "             (--socket) and stream its JSONL events\n"
      "  status     query a sociolearnd job by id (--socket --job N)\n"
      "  cancel     cancel a sociolearnd job by id (--socket --job N)\n"
      "  fsck       audit a result store: verify object checksums, find\n"
      "             orphans (--store DIR [--repair]); exit 1 on any finding\n\n"
      "every subcommand accepts --format table|json|csv; 'scenario' and\n"
      "'sweep' emit one JSON document per run (spec echo + probe results +\n"
      "timing; sweeps wrap the documents in one array).\n"
      "run 'sociolearn_cli <subcommand> --help' for the flags of each.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    failpoints::init_from_env();  // SGL_FAILPOINTS= (torture testing)
    if (command == "bounds") return cmd_bounds(sub_argc, sub_argv);
    if (command == "scenarios") return cmd_scenarios(sub_argc, sub_argv);
    if (command == "scenario" || command == "sweep") {
      return cmd_scenario(sub_argc, sub_argv, command == "sweep");
    }
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "regret") return cmd_regret(sub_argc, sub_argv);
    if (command == "gossip") return cmd_gossip(sub_argc, sub_argv);
    if (command == "check-trace") return cmd_check_trace(sub_argc, sub_argv);
    if (command == "submit") return cmd_submit(sub_argc, sub_argv);
    if (command == "status" || command == "cancel") {
      return cmd_job_op(command.c_str(), sub_argc, sub_argv);
    }
    if (command == "fsck") return cmd_fsck(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sociolearn_cli %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n\n", command.c_str());
  print_usage();
  return 2;
}
