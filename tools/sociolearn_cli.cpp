// sociolearn_cli — a command-line driver for the library.
//
//   sociolearn_cli bounds    --m 10 --beta 0.62
//       prints every theorem constant for the given parameters.
//   sociolearn_cli scenarios
//       lists the named scenarios of the registry.
//   sociolearn_cli scenario  --name ring --horizon 400 --reps 50
//       runs a registered scenario under the Monte-Carlo harness.
//   sociolearn_cli simulate  --engine finite|aggregate|infinite --m ... --beta ...
//       runs one trajectory and writes a per-step CSV to stdout.
//   sociolearn_cli regret    --m ... --beta ... --agents ... --horizon ... --reps ...
//       Monte-Carlo regret estimate with confidence intervals.
//   sociolearn_cli gossip    --nodes ... --rounds ... --drop ...
//       runs the sensor-network protocol and writes the per-round CSV.
//
// Every run is constructed through the scenario layer (scenario/) and
// executed by the generic runner (core/experiment.h); everything is
// deterministic given --seed.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "protocol/gossip_learner.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "support/flags.h"
#include "support/rng.h"
#include "support/table.h"

namespace {

using namespace sgl;

void add_model_flags(flag_set& flags) {
  flags.add_int64("m", 4, "number of options");
  flags.add_double("beta", 0.65, "adopt probability on a good signal");
  flags.add_double("alpha", -1.0, "adopt probability on a bad signal (-1 = 1-beta)");
  flags.add_double("mu", -1.0, "exploration weight (-1 = delta^2/6)");
  flags.add_double("eta-best", 0.85, "quality of the best option");
  flags.add_double("eta-rest", 0.35, "quality of every other option");
  flags.add_int64("seed", 1, "master RNG seed");
}

core::dynamics_params read_params(const flag_set& flags) {
  core::dynamics_params params;
  params.num_options = static_cast<std::size_t>(flags.get_int64("m"));
  params.beta = flags.get_double("beta");
  params.alpha = flags.get_double("alpha");
  params.mu = flags.get_double("mu");
  if (params.mu < 0.0) params.mu = core::theory::mu_cap(params.beta);
  params.validate();
  return params;
}

/// The ad-hoc two-level scenario the model flags describe.
scenario::scenario_spec read_scenario(const flag_set& flags) {
  scenario::scenario_spec spec;
  spec.name = "cli";
  spec.params = read_params(flags);
  spec.environment.etas =
      env::two_level_etas(static_cast<std::size_t>(flags.get_int64("m")),
                          flags.get_double("eta-best"), flags.get_double("eta-rest"));
  return spec;
}

void print_estimate(const core::regret_estimate& est, double bound) {
  text_table table{{"measure", "value"}};
  table.add_row({"regret", fmt_pm(est.regret.mean, est.regret.half_width)});
  table.add_row({"average reward",
                 fmt_pm(est.average_reward.mean, est.average_reward.half_width)});
  table.add_row({"avg best-option mass",
                 fmt_pm(est.best_mass.mean, est.best_mass.half_width)});
  table.add_row({"final best-option mass",
                 fmt_pm(est.final_best_mass.mean, est.final_best_mass.half_width)});
  table.add_row({"empty-step fraction", fmt(est.empty_step_fraction, 4)});
  table.add_row({"bound", fmt(bound, 4)});
  table.add_row({"replications", std::to_string(est.replications)});
  table.print(std::cout);
}

int cmd_bounds(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli bounds", "print the paper's constants"};
  add_model_flags(flags);
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  const core::dynamics_params params = read_params(flags);
  const std::size_t m = params.num_options;
  const double beta = params.beta;

  text_table table{{"constant", "formula", "value"}};
  table.add_row({"delta", "ln(beta/(1-beta))", fmt(params.delta(), 6)});
  table.add_row({"beta cap", "e/(e+1)", fmt(core::theory::beta_cap(), 6)});
  table.add_row({"mu cap", "delta^2/6", fmt(core::theory::mu_cap(beta), 6)});
  table.add_row({"min horizon", "ln(m)/delta^2", fmt(core::theory::min_horizon(m, beta), 2)});
  table.add_row({"Regret_inf bound", "3 delta",
                 fmt(core::theory::infinite_regret_bound(beta), 6)});
  table.add_row({"Regret_N bound", "6 delta",
                 fmt(core::theory::finite_regret_bound(beta), 6)});
  table.add_row({"popularity floor", "mu(1-beta)/(4m)",
                 fmt_sci(core::theory::popularity_floor(m, params.mu, beta), 3)});
  table.add_row({"epoch length", "ln(1/zeta)/delta^2",
                 fmt(core::theory::epoch_length(m, params.mu, beta), 2)});
  for (const double n : {1e3, 1e6}) {
    table.add_row({"delta'' (N=" + fmt_sci(n, 0) + ")",
                   "sqrt(60 m lnN/((1-b)muN))",
                   fmt_sci(core::theory::delta_double_prime(m, params.mu, beta, n), 3)});
  }
  table.add_row({"theorem conditions met", "Thm 4.3/4.4 hypotheses",
                 params.satisfies_theorem_conditions() ? "yes" : "no"});
  table.print(std::cout);
  return 0;
}

int cmd_scenarios(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli scenarios", "list the named scenarios"};
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  text_table table{{"name", "description"}};
  for (const auto& spec : scenario::all_scenarios()) {
    table.add_row({spec.name, spec.description});
  }
  table.print(std::cout);
  return 0;
}

int cmd_scenario(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli scenario", "run a registered scenario"};
  flags.add_string("name", "quickstart", "scenario name (see 'scenarios')");
  flags.add_int64("horizon", 400, "steps T");
  flags.add_int64("reps", 100, "replications");
  flags.add_int64("seed", 1, "master RNG seed");
  flags.add_int64("threads", 0, "replication worker threads (0 = all)");
  flags.add_int64("engine-threads", -1,
                  "threads inside one network-mode replication (0 = all, "
                  "-1 = keep the scenario's setting); bit-identical results "
                  "for any value");
  flags.add_int64("agents", -1, "override the scenario's population (-1 = keep)");
  flags.add_bool("curves", false, "emit per-step curves as CSV instead of the table");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;

  scenario::scenario_spec spec = scenario::get_scenario(flags.get_string("name"));
  if (flags.get_int64("engine-threads") >= 0) {
    spec.engine_threads = static_cast<unsigned>(flags.get_int64("engine-threads"));
  }
  if (flags.get_int64("agents") >= 0) {
    const scenario::engine_kind kind = scenario::resolved_engine(spec);
    if (kind == scenario::engine_kind::infinite ||
        kind == scenario::engine_kind::grouped) {
      std::fprintf(stderr,
                   "scenario '%s' runs the %s engine; --agents does not apply "
                   "(the %s carries the population)\n",
                   spec.name.c_str(),
                   kind == scenario::engine_kind::infinite ? "infinite" : "grouped",
                   kind == scenario::engine_kind::infinite ? "mean field" : "group mix");
      return 2;
    }
    if (flags.get_int64("agents") == 0) {
      // num_agents = 0 would silently re-resolve auto-select specs to the
      // mean-field engine; a scenario keeps its formulation.
      std::fprintf(stderr,
                   "--agents must be >= 1 (scenario '%s' is population-based; "
                   "run an infinite scenario for the mean field)\n",
                   spec.name.c_str());
      return 2;
    }
    spec.num_agents = static_cast<std::uint64_t>(flags.get_int64("agents"));
  }

  core::run_config config;
  config.horizon = static_cast<std::uint64_t>(flags.get_int64("horizon"));
  config.replications = static_cast<std::uint64_t>(flags.get_int64("reps"));
  config.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  config.threads = static_cast<unsigned>(flags.get_int64("threads"));
  config.collect_curves = flags.get_bool("curves");

  const core::run_result result = scenario::run(spec, config);
  if (config.collect_curves) {
    std::printf("t,running_regret,best_mass,min_popularity\n");
    for (std::size_t t = 0; t < result.curves->best_mass.length(); ++t) {
      std::printf("%zu,%.6f,%.6f,%.6f\n", t + 1, result.curves->running_regret.mean(t),
                  result.curves->best_mass.mean(t), result.curves->min_popularity.mean(t));
    }
    return 0;
  }
  std::printf("scenario: %s\n%s\n\n", spec.name.c_str(), spec.description.c_str());
  // The 3δ vs 6δ bound follows the engine actually run, not N.
  print_estimate(result.scalars,
                 scenario::resolved_engine(spec) == scenario::engine_kind::infinite
                     ? core::theory::infinite_regret_bound(spec.params.beta)
                     : core::theory::finite_regret_bound(spec.params.beta));
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli simulate", "run one trajectory, CSV to stdout"};
  add_model_flags(flags);
  flags.add_string("engine", "finite", "finite | aggregate | infinite");
  flags.add_int64("agents", 1000, "population size N (finite engines)");
  flags.add_int64("horizon", 200, "steps T");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;
  const auto horizon = static_cast<std::uint64_t>(flags.get_int64("horizon"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  const std::string engine_name = flags.get_string("engine");

  scenario::scenario_spec spec = read_scenario(flags);
  spec.num_agents = static_cast<std::uint64_t>(flags.get_int64("agents"));
  if (engine_name == "infinite") {
    spec.engine = scenario::engine_kind::infinite;
    spec.num_agents = 0;
  } else if (engine_name == "aggregate") {
    spec.engine = scenario::engine_kind::aggregate;
  } else if (engine_name == "finite") {
    spec.engine = scenario::engine_kind::agent_based;
  } else {
    std::fprintf(stderr, "unknown engine '%s' (finite | aggregate | infinite)\n",
                 engine_name.c_str());
    return 2;
  }

  // One loop for every engine: the dynamics_engine interface is the point.
  const auto engine = scenario::make_engine(spec)();
  const auto environment = scenario::make_environment(spec.environment)();
  rng reward_gen = rng::from_stream(seed, 0);
  rng process_gen = rng::from_stream(seed, 1);
  std::vector<std::uint8_t> r(spec.params.num_options);

  std::printf("t");
  for (std::size_t j = 0; j < spec.params.num_options; ++j) std::printf(",q%zu", j);
  std::printf(",group_reward\n");
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    environment->sample(t, reward_gen, r);
    engine->step(r, process_gen);
    const auto q = engine->popularity();
    double reward = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j) reward += q[j] * r[j];
    std::printf("%llu", static_cast<unsigned long long>(t));
    for (const double x : q) std::printf(",%.6f", x);
    std::printf(",%.6f\n", reward);
  }
  return 0;
}

int cmd_regret(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli regret", "Monte-Carlo regret estimate"};
  add_model_flags(flags);
  flags.add_int64("agents", 1000, "population size N (0 = infinite dynamics)");
  flags.add_int64("horizon", 200, "steps T");
  flags.add_int64("reps", 200, "replications");
  flags.add_int64("threads", 0, "worker threads (0 = all)");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;

  scenario::scenario_spec spec = read_scenario(flags);
  spec.num_agents = static_cast<std::uint64_t>(flags.get_int64("agents"));

  core::run_config config;
  config.horizon = static_cast<std::uint64_t>(flags.get_int64("horizon"));
  config.replications = static_cast<std::uint64_t>(flags.get_int64("reps"));
  config.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  config.threads = static_cast<unsigned>(flags.get_int64("threads"));

  const core::run_result result = scenario::run(spec, config);
  print_estimate(result.scalars,
                 spec.num_agents == 0
                     ? core::theory::infinite_regret_bound(spec.params.beta)
                     : core::theory::finite_regret_bound(spec.params.beta));
  return 0;
}

int cmd_gossip(int argc, const char* const* argv) {
  flag_set flags{"sociolearn_cli gossip", "run the sensor-network protocol, CSV out"};
  add_model_flags(flags);
  flags.add_int64("nodes", 100, "number of nodes");
  flags.add_int64("rounds", 200, "protocol rounds");
  flags.add_double("drop", 0.0, "packet loss probability");
  flags.add_bool("sticky", false, "keep previous choice instead of sitting out");
  if (flags.parse(argc, argv) != parse_status::ok) return 2;

  protocol::gossip_params gossip;
  gossip.dynamics = read_params(flags);
  gossip.sticky = flags.get_bool("sticky");
  protocol::signal_oracle oracle{
      env::two_level_etas(static_cast<std::size_t>(flags.get_int64("m")),
                          flags.get_double("eta-best"), flags.get_double("eta-rest")),
      static_cast<std::uint64_t>(flags.get_int64("seed")) + 1};
  protocol::gossip_run_config config;
  config.num_nodes = static_cast<std::size_t>(flags.get_int64("nodes"));
  config.rounds = static_cast<std::uint64_t>(flags.get_int64("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  config.links.drop_probability = flags.get_double("drop");

  const protocol::gossip_run_result result =
      protocol::run_gossip_experiment(gossip, oracle, config);
  std::printf("round,best_fraction,committed_fraction\n");
  for (std::size_t t = 0; t < result.best_fraction.size(); ++t) {
    std::printf("%zu,%.6f,%.6f\n", t + 1, result.best_fraction[t],
                result.committed_fraction[t]);
  }
  std::fprintf(stderr, "messages=%llu dropped=%llu bytes=%llu avg_regret=%.4f\n",
               static_cast<unsigned long long>(result.net.messages_sent),
               static_cast<unsigned long long>(result.net.messages_dropped),
               static_cast<unsigned long long>(result.net.bytes_sent()),
               result.average_regret);
  return 0;
}

void print_usage() {
  std::printf(
      "sociolearn_cli — drive the distributed learning dynamics from the shell\n\n"
      "subcommands:\n"
      "  bounds     print every theorem constant for given parameters\n"
      "  scenarios  list the named scenarios of the registry\n"
      "  scenario   run a registered scenario under the Monte-Carlo harness\n"
      "  simulate   run one trajectory (finite/aggregate/infinite), CSV to stdout\n"
      "  regret     Monte-Carlo regret estimate with confidence intervals\n"
      "  gossip     run the sensor-network gossip protocol, per-round CSV\n\n"
      "run 'sociolearn_cli <subcommand> --help' for the flags of each.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "bounds") return cmd_bounds(sub_argc, sub_argv);
    if (command == "scenarios") return cmd_scenarios(sub_argc, sub_argv);
    if (command == "scenario") return cmd_scenario(sub_argc, sub_argv);
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "regret") return cmd_regret(sub_argc, sub_argv);
    if (command == "gossip") return cmd_gossip(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sociolearn_cli %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n\n", command.c_str());
  print_usage();
  return 2;
}
