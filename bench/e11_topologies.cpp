// Experiment E11 — network-restricted sampling (§6, open problem 1).
//
// "The first is to extend our results to the social network setting where
// individuals can only sample in step (1) from their neighbors. The
// question here would be whether, and to what extent, the efficiency of
// the group remains as a function of the network topology."
//
// We run the agent-based dynamics with neighbour-only sampling over the
// standard topology zoo at equal N, reporting regret, final best-option
// mass, and the mean time to 90% consensus on the best option.

#include <algorithm>
#include <cmath>
#include <optional>

#include "bench_common.h"
#include "core/finite_dynamics.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "graph/graph.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

constexpr std::size_t k_agents = 900;
constexpr std::uint64_t k_horizon = 400;

struct topo_case {
  std::string name;
  std::optional<graph::graph> g;  // nullopt = fully mixed reference
};

struct outcome {
  running_stats regret;
  running_stats final_mass;
  running_stats hit_time;  // first t with best mass >= 0.9 (horizon+1 if never)
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E11: Learning over social-network topologies (Section 6, future work)",
      "Question: how does group efficiency degrade when sampling is restricted "
      "to network neighbours?");

  const std::vector<double> etas{0.85, 0.35};
  const core::dynamics_params params = core::theorem_params(2, 0.65);

  rng topo_gen{17};
  std::vector<topo_case> cases;
  cases.push_back({"fully mixed (paper)", std::nullopt});
  cases.push_back({"complete graph", graph::graph::complete(k_agents)});
  cases.push_back({"Erdos-Renyi p=0.011", graph::graph::erdos_renyi(k_agents, 0.011, topo_gen)});
  cases.push_back({"Barabasi-Albert m=5", graph::graph::barabasi_albert(k_agents, 5, topo_gen)});
  cases.push_back({"Watts-Strogatz k=5 p=0.1",
                   graph::graph::watts_strogatz(k_agents, 5, 0.1, topo_gen)});
  cases.push_back({"torus 30x30", graph::graph::grid(30, 30, true)});
  cases.push_back({"ring", graph::graph::ring(k_agents)});
  cases.push_back({"star", graph::graph::star(k_agents)});
  cases.push_back({"two cliques, 1 bridge", graph::graph::two_cliques(k_agents / 2, 1)});

  text_table table{{"topology", "avg degree", "regret", "final best mass",
                    "t to 90% (mean)"}};

  for (const auto& c : cases) {
    auto stats = parallel_reduce<outcome>(
        options.replications, [] { return outcome{}; },
        [&](outcome& out, std::size_t rep) {
          rng process_gen = rng::from_stream(options.seed, 2 * rep);
          rng env_gen = rng::from_stream(options.seed, 2 * rep + 1);
          env::bernoulli_rewards environment{etas};
          core::finite_dynamics dyn{params, k_agents};
          if (c.g.has_value()) dyn.set_topology(&*c.g);
          std::vector<std::uint8_t> r(2);
          double reward_sum = 0.0;
          std::uint64_t hit = k_horizon + 1;
          for (std::uint64_t t = 1; t <= k_horizon; ++t) {
            const auto q = dyn.popularity();
            environment.sample(t, env_gen, r);
            reward_sum += q[0] * r[0] + q[1] * r[1];
            dyn.step(r, process_gen);
            if (hit > k_horizon && dyn.popularity()[0] >= 0.9) hit = t;
          }
          out.regret.add(etas[0] - reward_sum / static_cast<double>(k_horizon));
          out.final_mass.add(dyn.popularity()[0]);
          out.hit_time.add(static_cast<double>(hit));
        },
        [](outcome& into, const outcome& from) {
          into.regret.merge(from.regret);
          into.final_mass.merge(from.final_mass);
          into.hit_time.merge(from.hit_time);
        },
        options.threads);

    table.add_row({c.name, c.g.has_value() ? fmt(c.g->average_degree(), 1) : "N-1",
                   fmt_pm(stats.regret.mean(), 2.0 * stats.regret.stderror()),
                   fmt(stats.final_mass.mean(), 3), fmt(stats.hit_time.mean(), 0)});
  }
  bench::emit(table, options);
  std::printf("N = %zu, T = %llu, beta = 0.65, eta = (0.85, 0.35); 't to 90%%' of "
              "%llu means never reached.\nShape: dense/expander graphs track the "
              "fully mixed dynamics; low-conductance graphs (ring, bridged cliques) "
              "learn, but more slowly.\n",
              k_agents, static_cast<unsigned long long>(k_horizon),
              static_cast<unsigned long long>(k_horizon + 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e11_topologies", "Section 6: network-restricted sampling across topologies", 30);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
