// Experiment E11 — network-restricted sampling (§6, open problem 1).
//
// "The first is to extend our results to the social network setting where
// individuals can only sample in step (1) from their neighbors. The
// question here would be whether, and to what extent, the efficiency of
// the group remains as a function of the network topology."
//
// We run the agent-based dynamics with neighbour-only sampling over the
// standard topology zoo at equal N, constructing every case through the
// scenario layer (the ring/small-world/two-cliques/torus cases are the
// registered scenarios verbatim; the rest override the topology family).
// Reported per topology: regret, final best-option mass, and the first step
// at which the replication-averaged best-option mass reaches 90%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace {

using namespace sgl;

constexpr std::uint64_t k_horizon = 400;

struct topo_case {
  std::string label;
  scenario::scenario_spec spec;
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E11: Learning over social-network topologies (Section 6, future work)",
      "Question: how does group efficiency degrade when sampling is restricted "
      "to network neighbours?");

  // Every case is the registered "ring" scenario's population/environment
  // with a different topology; the named topology scenarios are used as-is.
  const scenario::scenario_spec base = scenario::get_scenario("ring");
  const std::size_t n = static_cast<std::size_t>(base.num_agents);
  using family = scenario::topology_spec::family_kind;

  std::vector<topo_case> cases;
  {
    scenario::scenario_spec mixed = base;
    mixed.topology.family = family::none;
    cases.push_back({"fully mixed (paper)", std::move(mixed)});
  }
  {
    scenario::scenario_spec complete = base;
    complete.topology.family = family::complete;
    cases.push_back({"complete graph", std::move(complete)});
  }
  {
    scenario::scenario_spec er = base;
    er.topology.family = family::erdos_renyi;
    er.topology.edge_probability = 0.011;
    cases.push_back({"Erdos-Renyi p=0.011", std::move(er)});
  }
  {
    scenario::scenario_spec ba = base;
    ba.topology.family = family::barabasi_albert;
    ba.topology.degree = 5;
    cases.push_back({"Barabasi-Albert m=5", std::move(ba)});
  }
  cases.push_back({"Watts-Strogatz k=5 p=0.1", scenario::get_scenario("small-world")});
  cases.push_back({"torus 30x30", scenario::get_scenario("torus")});
  cases.push_back({"ring", base});
  {
    scenario::scenario_spec star = base;
    star.topology.family = family::star;
    cases.push_back({"star", std::move(star)});
  }
  cases.push_back({"two cliques, 1 bridge", scenario::get_scenario("two-cliques")});

  core::run_config config;
  config.horizon = k_horizon;
  config.replications = options.replications;
  config.seed = options.seed;
  config.threads = options.threads;
  config.collect_curves = true;

  text_table table{{"topology", "avg degree", "regret", "final best mass",
                    "t to mean 90%"}};

  for (auto& c : cases) {
    // Build each graph once, shared by the degree column and the run.
    std::string degree = "N-1";
    if (c.spec.topology.family != family::none) {
      c.spec.prebuilt_graph = std::make_shared<const graph::graph>(
          scenario::build_topology(c.spec.topology, n));
      degree = fmt(c.spec.prebuilt_graph->average_degree(), 1);
    }
    const core::run_result result = scenario::run(c.spec, config);
    c.spec.prebuilt_graph.reset();
    std::uint64_t hit = k_horizon + 1;
    for (std::size_t t = 0; t < result.curves->best_mass.length(); ++t) {
      if (result.curves->best_mass.mean(t) >= 0.9) {
        hit = t + 1;
        break;
      }
    }
    table.add_row({c.label, degree,
                   fmt_pm(result.scalars.regret.mean, result.scalars.regret.half_width),
                   fmt(result.scalars.final_best_mass.mean, 3), std::to_string(hit)});
  }
  bench::emit(table, options);
  std::printf("N = %zu, T = %llu, beta = 0.65, eta = (0.85, 0.35); 't to mean 90%%' of "
              "%llu means never reached.\nShape: dense/expander graphs track the "
              "fully mixed dynamics; low-conductance graphs (ring, bridged cliques) "
              "learn, but more slowly.\n",
              n, static_cast<unsigned long long>(k_horizon),
              static_cast<unsigned long long>(k_horizon + 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e11_topologies", "Section 6: network-restricted sampling across topologies", 30);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
