// Google-benchmark suite for the netsim/gossip protocol workload: how fast
// the discrete-event simulator drains a protocol round at different
// population scales and link models, and what a whole harness replication
// of a protocol scenario costs end to end.  The CI perf-smoke job runs
// this suite and uploads the JSON next to the network/harness suites, so
// the protocol path has a recorded perf trajectory from day one.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/probe.h"
#include "graph/graph.h"
#include "netsim/simulation.h"
#include "protocol/protocol_engine.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "support/rng.h"

namespace {

using namespace sgl;

protocol::engine_config bench_config(std::size_t m, double drop, double jitter) {
  protocol::engine_config config;
  config.dynamics = core::theorem_params(m, 0.65);
  config.drop_probability = drop;
  config.jitter_mean = jitter;
  return config;
}

/// Rounds/sec of a bare engine on the given topology (nullptr = fully
/// mixed); counters report the event and message throughput netsim
/// sustained.
void protocol_rounds(benchmark::State& state, const protocol::engine_config& config,
                     std::size_t num_nodes,
                     std::shared_ptr<const graph::graph> topology) {
  protocol::protocol_engine engine{config, num_nodes, std::move(topology)};
  rng gen{42};
  rng reward_gen{43};
  std::vector<std::uint8_t> rewards(config.dynamics.num_options);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    for (auto& r : rewards) r = reward_gen.next_bernoulli(0.6) ? 1 : 0;
    engine.step(rewards, gen);
    ++rounds;
    benchmark::DoNotOptimize(engine.popularity().data());
  }
  const core::net_metrics net = engine.sample_net();
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds * num_nodes));
  state.counters["rounds_per_second"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kIsRate);
  state.counters["messages_per_second"] = benchmark::Counter(
      static_cast<double>(net.messages_sent), benchmark::Counter::kIsRate);
}

void BM_protocol_round_mixed(benchmark::State& state) {
  const auto num_nodes = static_cast<std::size_t>(state.range(0));
  protocol_rounds(state, bench_config(2, 0.0, 0.0), num_nodes, nullptr);
}
BENCHMARK(BM_protocol_round_mixed)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_protocol_round_torus(benchmark::State& state) {
  const auto num_nodes = static_cast<std::size_t>(state.range(0));
  const std::size_t side = num_nodes == 4096 ? 64 : 32;
  auto torus =
      std::make_shared<const graph::graph>(graph::graph::grid(side, side, /*wrap=*/true));
  protocol_rounds(state, bench_config(4, 0.0, 0.0), side * side, std::move(torus));
}
BENCHMARK(BM_protocol_round_torus)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_protocol_round_lossy_jittery(benchmark::State& state) {
  // Loss + jitter exercise the net RNG and the retry path.
  protocol_rounds(state, bench_config(2, 0.3, 0.1), 1024, nullptr);
}
BENCHMARK(BM_protocol_round_lossy_jittery)->Unit(benchmark::kMicrosecond);

/// The nemesis path: a partition window plus crash/restart waves scheduled
/// into the run.  Arg 0 = recording off, 1 = ring recorder attached.  The
/// arg-0 row must track BM_protocol_round_mixed/1024 (modulo the loss/
/// jitter config): an installed schedule costs a handful of extra queue
/// events, and the recorder hook is one nullable-pointer branch per site.
void BM_protocol_round_nemesis(benchmark::State& state) {
  protocol::engine_config config = bench_config(2, 0.1, 0.05);
  netsim::fault_action cut;
  cut.which = netsim::fault_action::kind::partition;
  cut.at = 10.0;
  cut.until = 30.0;
  for (netsim::node_id id = 0; id < 512; ++id) cut.targets.push_back(id);
  config.faults.actions.push_back(cut);
  netsim::fault_action wave;
  wave.which = netsim::fault_action::kind::crash_wave;
  wave.at = 40.0;
  wave.fraction = 0.2;
  config.faults.actions.push_back(wave);
  netsim::fault_action back;
  back.which = netsim::fault_action::kind::restart_wave;
  back.at = 60.0;
  config.faults.actions.push_back(back);
  if (state.range(0) != 0) {
    config.record_trace = true;
    config.trace_capacity = 4096;  // ring mode: bounded memory over the loop
  }
  protocol_rounds(state, config, 1024, nullptr);
}
BENCHMARK(BM_protocol_round_nemesis)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Replications/sec of a protocol scenario through the full probe harness
/// (single-threaded, same reasoning as harness_bench.cpp: cpu_time must
/// see the whole workload).
void BM_protocol_replication(benchmark::State& state) {
  const scenario::scenario_spec spec = scenario::get_scenario("gossip_lossy_sweep");
  core::run_config config;
  config.horizon = 50;
  config.replications = 4;
  config.seed = 99;
  config.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::run_probes(spec, config));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * config.replications));
  state.counters["replications_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * config.replications),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_protocol_replication)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
