// Experiment E12 — time-varying option qualities (§6, future work).
//
// "It would also be interesting to explore the distributed learning
// algorithms when the parameters controlling the quality of the options
// (η_i's) are allowed to change ... (e.g., when the options represent
// stocks)."
//
// Two workloads: (a) the best option rotates every L steps (switching);
// (b) qualities drift linearly until the ranking inverts.  We report
// dynamic regret (vs the per-step best) as a function of the change rate,
// for the finite dynamics and the infinite reference, plus the mean
// recovery time after a switch.

#include <algorithm>
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/theory.h"
#include "env/markov_rewards.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/stats.h"

namespace {

using namespace sgl;

constexpr std::size_t k_options = 3;
constexpr std::uint64_t k_agents = 5000;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E12: Time-varying qualities — switching and drifting (Section 6)",
      "Question: how well does the dynamics track a moving best option?  "
      "Dynamic regret vs switch period; faster switching = harder.");

  const std::vector<double> base{0.85, 0.35, 0.35};
  const core::dynamics_params params = core::theorem_params(k_options, 0.65);

  text_table table{{"workload", "period L", "T", "dyn regret (finite)",
                    "dyn regret (infinite)", "recovery t (mean)", "recovered"}};

  for (const std::uint64_t period : {50ULL, 100ULL, 200ULL, 400ULL}) {
    const std::uint64_t horizon = 3 * period;
    core::run_config config;
    config.horizon = horizon;
    config.replications = options.replications;
    config.seed = options.seed;
    config.threads = options.threads;
    const auto factory = [&] {
      return std::make_unique<env::switching_rewards>(base, period);
    };
    // One pass, two probes: the §2.2 scalars and the recovery time (steps
    // after each switch until the new best option regains half the mass) —
    // measured on the same trajectories, which the fixed reduction could
    // not do.
    const core::regret_probe scalars;
    const core::recovery_probe recovery{0.5};
    const core::probe* probes[] = {&scalars, &recovery};
    const auto merged = core::run_with_probes(
        core::make_finite_engine_factory(params, k_agents), factory, config, probes);
    const core::regret_estimate finite =
        core::to_regret_estimate(dynamic_cast<const core::regret_probe&>(*merged[0]));
    const auto& recovered = dynamic_cast<const core::recovery_probe&>(*merged[1]);
    const core::regret_estimate infinite =
        core::estimate_infinite_regret(params, factory, config);

    // The mean covers only switches that recovered before the horizon (or
    // the next switch); the recovered/switches column keeps a short-period
    // run from reading "fast" when most switches never recover at all.
    table.add_row({"switching", std::to_string(period), std::to_string(horizon),
                   fmt_pm(finite.regret.mean, finite.regret.half_width),
                   fmt_pm(infinite.regret.mean, infinite.regret.half_width),
                   fmt(recovered.recovery_time_stats().mean(), 1),
                   std::to_string(recovered.recovery_time_stats().count()) + "/" +
                       std::to_string(recovered.switches())});
  }

  // Drift workload: ranking inverts halfway through.
  for (const std::uint64_t horizon : {200ULL, 800ULL}) {
    core::run_config config;
    config.horizon = horizon;
    config.replications = options.replications;
    config.seed = options.seed;
    config.threads = options.threads;
    const auto factory = [&] {
      return std::make_unique<env::drifting_rewards>(
          std::vector<double>{0.85, 0.35, 0.35}, std::vector<double>{0.35, 0.35, 0.85},
          horizon);
    };
    const core::regret_estimate finite =
        core::estimate_finite_regret(params, k_agents, factory, config);
    const core::regret_estimate infinite =
        core::estimate_infinite_regret(params, factory, config);
    table.add_row({"drifting (invert)", "-", std::to_string(horizon),
                   fmt_pm(finite.regret.mean, finite.regret.half_width),
                   fmt_pm(infinite.regret.mean, infinite.regret.half_width), "-", "-"});
  }

  // Markov regime-switching workload ("stocks"): bull/bear regimes with
  // expected sojourn 1/(1-stay).
  for (const double stay : {0.98, 0.99, 0.995}) {
    constexpr std::uint64_t horizon = 1200;
    core::run_config config;
    config.horizon = horizon;
    config.replications = options.replications;
    config.seed = options.seed;
    config.threads = options.threads;
    const auto factory = [&] {
      return std::make_unique<env::markov_rewards>(
          std::vector<std::vector<double>>{{0.85, 0.35, 0.35}, {0.35, 0.85, 0.35}},
          std::vector<std::vector<double>>{{stay, 1.0 - stay}, {1.0 - stay, stay}},
          horizon, options.seed + 77);
    };
    const core::regret_estimate finite =
        core::estimate_finite_regret(params, k_agents, factory, config);
    const core::regret_estimate infinite =
        core::estimate_infinite_regret(params, factory, config);
    table.add_row({"markov (stay=" + fmt(stay, 3) + ")",
                   fmt(1.0 / (1.0 - stay), 0), std::to_string(horizon),
                   fmt_pm(finite.regret.mean, finite.regret.half_width),
                   fmt_pm(infinite.regret.mean, infinite.regret.half_width), "-", "-"});
  }

  bench::emit(table, options);
  std::printf("Shape: dynamic regret decreases with the switch period (the "
              "ln(1/zeta)/delta^2 re-convergence\ncost amortizes over longer "
              "stable windows); the mu-exploration floor is what makes recovery "
              "possible at all.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e12_time_varying", "Section 6: switching and drifting option qualities", 80);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
