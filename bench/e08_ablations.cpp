// Experiment E8 — the Section 3 ablations.
//
// Claim (§3): "if we only have sampling ... or only have adoption ..., the
// process does not always converge to the best option. Hence, both steps of
// the process seem crucial."
//
// Variants on the same environment (η = 0.85 / 0.35, N = 2000, T = 400):
//   full          — the two-stage dynamics, theorem parameters;
//   copy-only     — adoption blind to signals (β = α = 1), μ = 0: pure
//                   copying; fixates on a random option (Pólya-style);
//   copy+explore  — β = α = 1 with μ > 0: drifts, never concentrates
//                   by signal quality;
//   adopt-only    — μ = 1: no social sampling; popularity just mirrors the
//                   last signal, no compounding;
//   no-explore    — μ = 0 with proper adoption: usually fine, but can lose
//                   an option forever after an early wipe-out.
//
// Reported: regret, average/final best mass, and how often the run *failed*
// (final best mass < 1/2) — the "does not always converge" part.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/aggregate_dynamics.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

struct variant {
  std::string name;
  core::dynamics_params params;
};

struct outcome {
  running_stats regret;
  running_stats avg_best_mass;
  running_stats final_best_mass;
  running_stats failed;  // indicator: final best mass < 0.5
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E8: Ablating the two stages (Section 3)",
      "Claim: sampling-only and adoption-only variants fail to concentrate on "
      "the best option; the full two-stage dynamics succeeds.");

  constexpr std::size_t m = 2;
  constexpr std::uint64_t n = 2000;
  constexpr std::uint64_t horizon = 400;
  const std::vector<double> etas{0.85, 0.35};

  std::vector<variant> variants;
  variants.push_back({"full (thm params)", core::theorem_params(m, 0.65)});
  {
    core::dynamics_params p;
    p.num_options = m;
    p.mu = 0.0;
    p.beta = 1.0;
    p.alpha = 1.0;
    variants.push_back({"copy-only (b=a=1, mu=0)", p});
  }
  {
    core::dynamics_params p;
    p.num_options = m;
    p.mu = 0.05;
    p.beta = 1.0;
    p.alpha = 1.0;
    variants.push_back({"copy+explore (b=a=1)", p});
  }
  {
    core::dynamics_params p;
    p.num_options = m;
    p.mu = 1.0;
    p.beta = 0.65;
    variants.push_back({"adopt-only (mu=1)", p});
  }
  {
    core::dynamics_params p = core::theorem_params(m, 0.65);
    p.mu = 0.0;
    variants.push_back({"no-explore (mu=0)", p});
  }

  text_table table{{"variant", "regret", "avg best mass", "final best mass",
                    "P(fail)", "identifies best"}};

  for (const auto& v : variants) {
    auto stats = parallel_reduce<outcome>(
        options.replications, [] { return outcome{}; },
        [&](outcome& out, std::size_t rep) {
          rng process_gen = rng::from_stream(options.seed, 2 * rep);
          rng env_gen = rng::from_stream(options.seed, 2 * rep + 1);
          env::bernoulli_rewards environment{etas};
          core::aggregate_dynamics dyn{v.params, n};
          std::vector<std::uint8_t> r(m);
          double reward_sum = 0.0;
          double mass_sum = 0.0;
          for (std::uint64_t t = 1; t <= horizon; ++t) {
            const double q_best = dyn.popularity()[0];
            environment.sample(t, env_gen, r);
            reward_sum += dyn.popularity()[0] * r[0] + dyn.popularity()[1] * r[1];
            mass_sum += q_best;
            dyn.step(r, process_gen);
          }
          const double final_mass = dyn.popularity()[0];
          out.regret.add(0.85 - reward_sum / static_cast<double>(horizon));
          out.avg_best_mass.add(mass_sum / static_cast<double>(horizon));
          out.final_best_mass.add(final_mass);
          out.failed.add(final_mass < 0.5 ? 1.0 : 0.0);
        },
        [](outcome& into, const outcome& from) {
          into.regret.merge(from.regret);
          into.avg_best_mass.merge(from.avg_best_mass);
          into.final_best_mass.merge(from.final_best_mass);
          into.failed.merge(from.failed);
        },
        options.threads);

    table.add_row({v.name, fmt_pm(stats.regret.mean(), 2.0 * stats.regret.stderror()),
                   fmt(stats.avg_best_mass.mean(), 3),
                   fmt(stats.final_best_mass.mean(), 3), fmt(stats.failed.mean(), 3),
                   bench::verdict(stats.failed.mean() < 0.1)});
  }
  bench::emit(table, options);
  std::printf("Expected shape: only the full dynamics (and usually no-explore) "
              "identify the best option;\ncopy-only fixates on a coin-flip option "
              "(P(fail) ~ 0.5), adopt-only hovers at chance.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e08_ablations", "Section 3: both stages are necessary", 200);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
