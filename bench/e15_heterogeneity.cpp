// Experiment E15 — heterogeneous adoption functions f_i (§2.1).
//
// "For simplicity in the exposition, we assume that all f_i are identical,
// and drop the index i.  This assumption is not essential for our results."
//
// We test that remark quantitatively: mixtures of discerning / average /
// credulous agents, and an increasing fraction of outright signal-blind
// copycats, on the same environment.  The claim's shape: regret degrades
// smoothly with the *average* sensitivity, and stays within the 6δ̄ bound
// computed from the population-average (ᾱ, β̄) as long as a sensitive core
// remains.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/finite_dynamics.h"
#include "core/grouped_dynamics.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

constexpr std::size_t k_agents = 2000;
constexpr std::uint64_t k_horizon = 400;

struct mix_case {
  std::string name;
  std::vector<core::adoption_rule> rules;  // cycled over the population
};

struct outcome {
  running_stats regret;
  running_stats final_mass;
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E15: Heterogeneous adoption rules f_i (Section 2.1 remark)",
      "Claim: identical f_i is 'not essential' — mixed populations still "
      "identify the best option while a sensitive core remains.");

  const std::vector<double> etas{0.85, 0.35};
  constexpr double mu = 0.05;

  std::vector<mix_case> cases;
  cases.push_back({"homogeneous (0.35, 0.65)", {{0.35, 0.65}}});
  cases.push_back({"discerning/average/credulous",
                   {{0.10, 0.90}, {0.35, 0.65}, {0.55, 0.75}}});
  cases.push_back({"wide spread (0.05..0.95)",
                   {{0.05, 0.95}, {0.25, 0.75}, {0.45, 0.55}, {0.30, 0.95}}});
  for (const int copycats_pct : {25, 50, 75, 90}) {
    // copycats adopt whatever they see (alpha = beta = 1): signal-blind.
    std::vector<core::adoption_rule> rules;
    for (int i = 0; i < 100; ++i) {
      rules.push_back(i < copycats_pct ? core::adoption_rule{1.0, 1.0}
                                       : core::adoption_rule{0.35, 0.65});
    }
    cases.push_back({std::to_string(copycats_pct) + "% signal-blind copycats",
                     std::move(rules)});
  }

  text_table table{{"population", "avg alpha", "avg beta", "regret",
                    "final best mass", "identifies best"}};

  for (const auto& c : cases) {
    double avg_alpha = 0.0;
    double avg_beta = 0.0;
    std::vector<core::adoption_rule> population(k_agents);
    for (std::size_t i = 0; i < k_agents; ++i) {
      population[i] = c.rules[i % c.rules.size()];
      avg_alpha += population[i].alpha;
      avg_beta += population[i].beta;
    }
    avg_alpha /= static_cast<double>(k_agents);
    avg_beta /= static_cast<double>(k_agents);

    core::dynamics_params params;
    params.num_options = 2;
    params.mu = mu;
    params.beta = 0.65;  // placeholder; per-agent rules override adoption

    auto stats = parallel_reduce<outcome>(
        options.replications, [] { return outcome{}; },
        [&](outcome& out, std::size_t rep) {
          rng process_gen = rng::from_stream(options.seed, 2 * rep);
          rng env_gen = rng::from_stream(options.seed, 2 * rep + 1);
          env::bernoulli_rewards environment{etas};
          core::finite_dynamics dyn{params, k_agents};
          dyn.set_agent_rules(population);
          std::vector<std::uint8_t> r(2);
          double reward_sum = 0.0;
          for (std::uint64_t t = 1; t <= k_horizon; ++t) {
            const auto q = dyn.popularity();
            environment.sample(t, env_gen, r);
            reward_sum += q[0] * r[0] + q[1] * r[1];
            dyn.step(r, process_gen);
          }
          out.regret.add(etas[0] - reward_sum / static_cast<double>(k_horizon));
          out.final_mass.add(dyn.popularity()[0]);
        },
        [](outcome& into, const outcome& from) {
          into.regret.merge(from.regret);
          into.final_mass.merge(from.final_mass);
        },
        options.threads);

    table.add_row({c.name, fmt(avg_alpha, 3), fmt(avg_beta, 3),
                   fmt_pm(stats.regret.mean(), 2.0 * stats.regret.stderror()),
                   fmt(stats.final_mass.mean(), 3),
                   bench::verdict(stats.final_mass.mean() > 0.5)});
  }
  // Scale check with the exact O(G·m) grouped engine: the 50%-copycat mix
  // at one million agents (infeasible agent-by-agent at bench time scales).
  {
    core::dynamics_params params;
    params.num_options = 2;
    params.mu = mu;
    params.beta = 0.65;
    const std::vector<core::rule_group> groups{{500000, {1.0, 1.0}},
                                               {500000, {0.35, 0.65}}};
    auto stats = parallel_reduce<outcome>(
        options.replications, [] { return outcome{}; },
        [&](outcome& out, std::size_t rep) {
          rng process_gen = rng::from_stream(options.seed + 3, 2 * rep);
          rng env_gen = rng::from_stream(options.seed + 3, 2 * rep + 1);
          env::bernoulli_rewards environment{etas};
          core::grouped_dynamics dyn{params, groups};
          std::vector<std::uint8_t> r(2);
          double reward_sum = 0.0;
          for (std::uint64_t t = 1; t <= k_horizon; ++t) {
            const auto q = dyn.popularity();
            environment.sample(t, env_gen, r);
            reward_sum += q[0] * r[0] + q[1] * r[1];
            dyn.step(r, process_gen);
          }
          out.regret.add(etas[0] - reward_sum / static_cast<double>(k_horizon));
          out.final_mass.add(dyn.popularity()[0]);
        },
        [](outcome& into, const outcome& from) {
          into.regret.merge(from.regret);
          into.final_mass.merge(from.final_mass);
        },
        options.threads);
    table.add_row({"50% copycats @ N=10^6 (grouped)", "0.675", "0.825",
                   fmt_pm(stats.regret.mean(), 2.0 * stats.regret.stderror()),
                   fmt(stats.final_mass.mean(), 3),
                   bench::verdict(stats.final_mass.mean() > 0.5)});
  }

  bench::emit(table, options);
  std::printf("N = %zu, T = %llu, mu = %.2f, eta = (0.85, 0.35).\n"
              "Shape: regret degrades smoothly as signal-blind agents dilute the "
              "population; even a 25%%\nsensitive core suffices, confirming the "
              "'not essential' remark — while 100%% blind agents\nwould reduce to "
              "E8's failing copy-only ablation.\n",
              k_agents, static_cast<unsigned long long>(k_horizon), mu);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e15_heterogeneity", "Section 2.1: heterogeneous adoption functions", 60);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
