// Experiment E5 — Propositions 4.1–4.3 (per-stage concentration).
//
// Claims (conditioned on the state before the step, for all j at once):
//   Prop 4.1:  S^{t+1}_j ≈ ((1−μ)Q^t_j + μ/m)·N       within 1+2δ′,
//   Prop 4.2:  D^{t+1}_j ≈ S^{t+1}_j·β^{R_j}(1−β)^{1−R_j} within 1+2δ″,
//   Prop 4.3:  D^{t+1}_j ≈ expected product                within 1+6δ″,
// each w.p. ≥ 1 − O(m/N¹⁰).
//
// We run one step from the uniform state, record the worst ratio deviation
// over options and replications, and compare with the radii.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/aggregate_dynamics.h"
#include "core/theory.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

struct deviations {
  running_stats stage1;   // worst |S_j / E[S_j] - 1| per replication
  running_stats stage2;   // worst |D_j / (S_j g_j) - 1|
  running_stats combined; // worst |D_j / (p_j N g_j) - 1|
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E5: One-step Chernoff concentration of both stages (Props 4.1-4.3)",
      "Claim: stage-1 counts concentrate within 1+2*delta', stage-2 within "
      "1+2*delta'', combined within 1+6*delta''.");

  constexpr std::size_t m = 5;
  constexpr double beta = 0.62;
  const core::dynamics_params params = core::theorem_params(m, beta);
  // Signals fixed to a half-good pattern so g_j covers both branches.
  const std::vector<std::uint8_t> rewards{1, 0, 1, 0, 1};

  text_table table{{"N", "delta'", "max dev S", "2*delta'", "delta''", "max dev D|S",
                    "2*delta''", "max dev D", "6*delta''"}};

  for (const std::uint64_t n : {10000ULL, 100000ULL, 1000000ULL, 10000000ULL}) {
    const double dp =
        core::theory::delta_prime(m, params.mu, static_cast<double>(n));
    const double ddp = core::theory::delta_double_prime(m, params.mu, beta,
                                                        static_cast<double>(n));

    auto dev = parallel_reduce<deviations>(
        options.replications, [] { return deviations{}; },
        [&](deviations& d, std::size_t rep) {
          rng gen = rng::from_stream(options.seed, rep);
          core::aggregate_dynamics dyn{params, n};
          dyn.step(rewards, gen);
          const auto s = dyn.stage_counts();
          const auto counts = dyn.adopter_counts();
          double worst1 = 0.0;
          double worst2 = 0.0;
          double worst3 = 0.0;
          for (std::size_t j = 0; j < m; ++j) {
            const double p_j = (1.0 - params.mu) / static_cast<double>(m) +
                               params.mu / static_cast<double>(m);
            const double expected_s = p_j * static_cast<double>(n);
            const double g_j = rewards[j] != 0 ? beta : params.resolved_alpha();
            worst1 = std::max(worst1,
                              std::abs(static_cast<double>(s[j]) / expected_s - 1.0));
            if (s[j] > 0) {
              worst2 = std::max(
                  worst2, std::abs(static_cast<double>(counts[j]) /
                                       (static_cast<double>(s[j]) * g_j) -
                                   1.0));
            }
            worst3 = std::max(worst3, std::abs(static_cast<double>(counts[j]) /
                                                   (expected_s * g_j) -
                                               1.0));
          }
          d.stage1.add(worst1);
          d.stage2.add(worst2);
          d.combined.add(worst3);
        },
        [](deviations& into, const deviations& from) {
          into.stage1.merge(from.stage1);
          into.stage2.merge(from.stage2);
          into.combined.merge(from.combined);
        },
        options.threads);

    table.add_row({std::to_string(n), fmt_sci(dp, 2), fmt_sci(dev.stage1.max(), 2),
                   fmt_sci(2.0 * dp, 2), fmt_sci(ddp, 2), fmt_sci(dev.stage2.max(), 2),
                   fmt_sci(2.0 * ddp, 2), fmt_sci(dev.combined.max(), 2),
                   fmt_sci(6.0 * ddp, 2)});
  }
  bench::emit(table, options);
  std::printf("Max deviations are over %llu replications and all %zu options; the\n"
              "radii hold with large slack, as the union-bound proof predicts.\n",
              static_cast<unsigned long long>(options.replications), m);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e05_concentration", "Props 4.1-4.3: per-stage Chernoff concentration", 500);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
