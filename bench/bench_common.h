#pragma once

/// \file bench_common.h
/// Shared scaffolding for the experiment binaries (bench/e01..e14): a
/// standard flag set, a header banner tying the binary to its paper claim,
/// and small helpers.  Every binary accepts --reps/--seed/--threads/--quick
/// and prints the table or series its experiment reproduces; EXPERIMENTS.md
/// records the measured-vs-bound outcomes.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "support/flags.h"
#include "support/table.h"

namespace sgl::bench {

struct standard_options {
  std::uint64_t replications = 0;
  std::uint64_t seed = 0;
  unsigned threads = 0;
  bool quick = false;
  bool csv = false;
};

/// Builds the common flag set.  `default_reps` is the full-fidelity default;
/// --quick divides it by 4 (min 8).
inline flag_set make_standard_flags(const std::string& program,
                                    const std::string& description,
                                    std::int64_t default_reps) {
  flag_set flags{program, description};
  flags.add_int64("reps", default_reps, "Monte-Carlo replications");
  flags.add_int64("seed", 1, "master RNG seed");
  flags.add_int64("threads", 0, "worker threads (0 = all cores)");
  flags.add_bool("quick", false, "reduced replication count");
  flags.add_bool("csv", false, "also emit the table as CSV");
  return flags;
}

/// Parses and extracts the standard options; returns false if the program
/// should exit (help/error), with the exit code in `exit_code`.
inline bool parse_standard(flag_set& flags, int argc, const char* const* argv,
                           standard_options& options, int& exit_code) {
  switch (flags.parse(argc, argv)) {
    case parse_status::help:
      exit_code = 0;
      return false;
    case parse_status::error:
      exit_code = 2;
      return false;
    case parse_status::ok:
      break;
  }
  options.replications = static_cast<std::uint64_t>(flags.get_int64("reps"));
  options.seed = static_cast<std::uint64_t>(flags.get_int64("seed"));
  options.threads = static_cast<unsigned>(flags.get_int64("threads"));
  options.quick = flags.get_bool("quick");
  options.csv = flags.get_bool("csv");
  if (options.quick) {
    options.replications = std::max<std::uint64_t>(8, options.replications / 4);
  }
  return true;
}

/// Prints the experiment banner.
inline void print_banner(const std::string& experiment_id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", experiment_id.c_str(), claim.c_str());
}

/// Prints the table (and CSV when requested).
inline void emit(const text_table& table, const standard_options& options) {
  table.print(std::cout);
  if (options.csv) {
    std::printf("\n--- csv ---\n");
    table.write_csv(std::cout);
  }
  std::printf("\n");
}

/// "yes"/"NO" verdict cell.
inline std::string verdict(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace sgl::bench
