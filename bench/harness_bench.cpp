// Google-benchmark suite for the Monte-Carlo *harness* (PR 4): how many
// replications per second the runner sustains around the engines, and how
// fast a sweep grid drains through the flattened scheduler.  The engine
// step kernels themselves are covered by micro_kernels.cpp; everything
// here measures what wraps them — context reuse vs per-replication
// reconstruction, probe overhead, scheduling, and the topology cache.
//
// `bench-report` writes this suite to BENCH_PR4.json (checked in as the
// perf baseline; tools/bench_diff.py compares a fresh run against it in
// the CI perf-smoke job).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/probe.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "scenario/sweep.h"

namespace {

using namespace sgl;

core::run_config harness_config(std::uint64_t horizon, std::uint64_t replications,
                                bool reuse) {
  core::run_config config;
  config.horizon = horizon;
  config.replications = replications;
  config.seed = 99;
  // Single-threaded on purpose: the CI perf gate compares this suite's
  // cpu_time against a checked-in baseline, and google-benchmark's
  // cpu_time counts only the benchmark thread — with threads=0 a
  // multi-core runner would hide most of the work (and any regression in
  // it) in helper threads the metric never sees.  Pinning one thread
  // makes baseline and measurement the same quantity on every machine;
  // scaling behaviour is the scheduler tests' concern, not this gate's.
  config.threads = 1;
  config.reuse = reuse;
  return config;
}

/// replications/sec through run_probes on a registry scenario.  state.range
/// selects reuse (1) vs rebuild-every-replication (0); the gap is the
/// amortized construction cost.
void replication_throughput(benchmark::State& state, const std::string& name,
                            std::uint64_t horizon, std::uint64_t replications) {
  const scenario::scenario_spec spec = scenario::get_scenario(name);
  const core::run_config config =
      harness_config(horizon, replications, state.range(0) != 0);
  // Warm the topology cache and the worker pool outside the timed region:
  // several benchmarks here run a single long iteration, which would
  // otherwise charge all process cold-start costs to whichever variant
  // happens to run first and destabilize the CI regression gate.
  (void)scenario::run_probes(spec, harness_config(1, 1, true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::run_probes(spec, config));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * replications));
  state.counters["replications_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * replications),
      benchmark::Counter::kIsRate);
}

void BM_harness_mixed_baseline(benchmark::State& state) {
  // The issue's headline: small-N fully mixed scenario at horizon 1e3.
  replication_throughput(state, "mixed_baseline", 1000, 20);
}
BENCHMARK(BM_harness_mixed_baseline)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_harness_network_ring900(benchmark::State& state) {
  // Small-N network mode: reuse spares the per-replication buffer
  // allocations and the committed-neighbour-view rebuild.
  replication_throughput(state, "ring", 200, 8);
}
BENCHMARK(BM_harness_network_ring900)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_harness_network_ring1e5_short(benchmark::State& state) {
  // Large-N, short-horizon network runs: the regime where reconstruction
  // (O(N) allocation + view rebuild) rivals the stepping itself.
  replication_throughput(state, "network_ring_1e5", 10, 6);
}
BENCHMARK(BM_harness_network_ring1e5_short)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Wall clock of a 16-point sweep through the flattened scheduler.
void sweep_wall_clock(benchmark::State& state, const std::string& name,
                      const std::string& axis, std::uint64_t horizon,
                      std::uint64_t replications, std::uint64_t agents_override) {
  scenario::scenario_spec base = scenario::get_scenario(name);
  if (agents_override != 0) base.num_agents = agents_override;
  const scenario::sweep_axis parsed = scenario::parse_sweep_axis(axis);
  const auto grid = scenario::expand_sweep(std::span{&parsed, 1});
  const core::run_config config = harness_config(horizon, replications, true);
  // Warm the topology cache (same reasoning as replication_throughput):
  // the steady cached-graph state is the stable object to gate CI on; the
  // cold-build win is recorded in bench/PERF.md instead.
  (void)scenario::run_probes(base, harness_config(1, 1, true));
  std::uint64_t points = 0;
  for (auto _ : state) {
    const auto results = scenario::run_sweep(base, grid, config);
    points += results.size();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(points));
}

void BM_sweep16_mixed_baseline(benchmark::State& state) {
  sweep_wall_clock(state, "mixed_baseline", "params.beta=0.56:0.71:0.01", 400, 60, 0);
}
BENCHMARK(BM_sweep16_mixed_baseline)->Unit(benchmark::kMillisecond);

void BM_sweep16_smallworld_1e5(benchmark::State& state) {
  // 16 beta values on a Watts-Strogatz graph at N=1e5: without the
  // topology cache every point rebuilds the random graph; with it the
  // sweep pays for one build.
  sweep_wall_clock(state, "small-world", "params.beta=0.56:0.71:0.01", 10, 4, 100000);
}
BENCHMARK(BM_sweep16_smallworld_1e5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
