// Experiment E4 — Lemma 4.5 (finite/infinite coupling).
//
// Claim: feeding both processes the same reward realizations,
//   1/(1+δ_t) ≤ P^t_j/Q^t_j ≤ 1+δ_t with δ_t = 5^t·δ″, w.p. ≥ 1 − 6tm/N¹⁰,
//   δ″ = √(60 m ln N/((1−β) μ N)).
//
// We sweep N, report the measured per-step ratio deviation next to the 5^t
// envelope, and the empirical fraction of replications inside the bound.
// The 5^t growth is very pessimistic: the measured deviation grows far
// slower (roughly like √t), which the table makes visible.

#include <cmath>
#include <memory>

#include "bench_common.h"
#include "core/coupling.h"
#include "core/theory.h"
#include "env/reward_model.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E4: Coupled finite vs infinite trajectories (Lemma 4.5)",
      "Claim: max_j ratio-deviation(P^t/Q^t) <= 5^t * delta'' w.h.p.; the paper's "
      "envelope is loose, the measured drift grows much slower.");

  constexpr std::size_t m = 3;
  constexpr double beta = 0.6;
  const core::dynamics_params params = core::theorem_params(m, beta);
  const auto etas = env::two_level_etas(m, 0.85, 0.35);

  text_table table{{"N", "delta''", "t", "measured dev", "bound 5^t d''",
                    "frac within"}};

  for (const std::uint64_t n : {1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    const double ddp = core::theory::delta_double_prime(m, params.mu, beta,
                                                        static_cast<double>(n));
    core::run_config config;
    config.horizon = 8;
    config.replications = options.replications;
    config.seed = options.seed;
    config.threads = options.threads;
    const core::coupling_estimate est = core::estimate_coupling(
        params, n, [&] { return std::make_unique<env::bernoulli_rewards>(etas); },
        config);
    for (std::size_t t = 1; t <= config.horizon; ++t) {
      const double bound = est.bound[t - 1];
      table.add_row({std::to_string(n), fmt_sci(ddp, 2), std::to_string(t),
                     fmt_pm(est.deviation.mean(t - 1),
                            est.deviation.ci(t - 1).half_width),
                     std::isinf(bound) ? "inf" : fmt(bound, 4),
                     fmt(est.within_bound.mean(t - 1), 3)});
    }
  }
  bench::emit(table, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e04_coupling", "Lemma 4.5: coupling between finite and infinite dynamics", 200);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
