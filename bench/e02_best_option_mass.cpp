// Experiment E2 — Theorem 4.3, part 2 (mass on the best option).
//
// Claim: (1/T)·Σ_t E[P^{t−1}_1] ≥ 1 − 3δ/(η₁−η₂) for T ≥ ln m/δ².
//
// We sweep β and the quality gap, report the time-averaged mass on the best
// option against the paper's lower bound (clamped at 0 where vacuous).

#include <algorithm>
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/theory.h"
#include "env/reward_model.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E2: Time-averaged mass on the best option (Theorem 4.3, part 2)",
      "Claim: avg_t E[P^{t-1}_best] >= 1 - 3*delta/gap once T >= ln(m)/delta^2.");

  constexpr std::size_t m = 3;
  constexpr double eta1 = 0.9;
  text_table table{{"beta", "delta", "gap", "T", "avg best mass", "bound",
                    "informative", "within"}};

  for (const double beta : {0.52, 0.55, 0.6, 0.65, 0.73}) {
    for (const double gap : {0.1, 0.2, 0.4, 0.8}) {
      const core::dynamics_params params = core::theorem_params(m, beta);
      const double bound = core::theory::best_mass_lower_bound(beta, gap);
      core::run_config config;
      config.horizon = static_cast<std::uint64_t>(
          std::ceil(2.0 * std::max(core::theory::min_horizon(m, beta), 8.0)));
      config.replications = options.replications;
      config.seed = options.seed;
      config.threads = options.threads;
      const core::regret_estimate est = core::estimate_infinite_regret(
          params,
          [&] {
            return std::make_unique<env::bernoulli_rewards>(
                std::vector<double>{eta1, eta1 - gap, eta1 - gap});
          },
          config);
      table.add_row(
          {fmt(beta, 2), fmt(params.delta(), 3), fmt(gap, 2),
           std::to_string(config.horizon),
           fmt_pm(est.best_mass.mean, est.best_mass.half_width), fmt(bound, 3),
           bench::verdict(bound > 0.0),
           bench::verdict(est.best_mass.mean + est.best_mass.half_width >= bound)});
    }
  }
  bench::emit(table, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e02_best_option_mass", "Theorem 4.3 part 2: best-option mass lower bound", 150);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
