// Experiment E3 — Theorem 4.4 (finite-population regret).
//
// Claim: for N large enough and ln m/δ² ≤ T ≤ N¹⁰/(mδ),
//   Regret_N(T) ≤ 6δ.
//
// We start from the registered "theorem-finite" scenario and sweep its N
// override over four orders of magnitude (exact aggregate engine, O(m) per
// step) at T* and 10·T*, with the registered "theorem-infinite" scenario as
// the N→∞ reference.  The paper's explicit N-thresholds are astronomically
// conservative; the table shows the 6δ bound already holding at small N —
// a finding EXPERIMENTS.md records.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/theory.h"
#include "scenario/registry.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E3: Regret of the finite-population dynamics (Theorem 4.4)",
      "Claim: Regret_N(T) <= 6*delta for T in [ln(m)/delta^2, N^10/(m delta)].");

  scenario::scenario_spec finite_spec = scenario::get_scenario("theorem-finite");
  const scenario::scenario_spec infinite_spec =
      scenario::get_scenario("theorem-infinite");
  const core::dynamics_params& params = finite_spec.params;
  const std::size_t m = params.num_options;
  const double beta = params.beta;
  const double bound = core::theory::finite_regret_bound(beta);
  const auto t_star = static_cast<std::uint64_t>(
      std::ceil(std::max(core::theory::min_horizon(m, beta), 8.0)));

  text_table table{{"N", "T", "Regret_N(T)", "Regret_inf(T)", "bound 6d",
                    "paper N-cond", "within"}};

  for (const std::uint64_t multiple : {1ULL, 10ULL}) {
    core::run_config config;
    config.horizon = t_star * multiple;
    config.replications = options.replications;
    config.seed = options.seed;
    config.threads = options.threads;

    const core::regret_estimate infinite = scenario::run(infinite_spec, config).scalars;

    for (const std::uint64_t n :
         {100ULL, 1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
      finite_spec.num_agents = n;
      const core::regret_estimate finite = scenario::run(finite_spec, config).scalars;
      table.add_row(
          {std::to_string(n), std::to_string(config.horizon),
           fmt_pm(finite.regret.mean, finite.regret.half_width),
           fmt_pm(infinite.regret.mean, infinite.regret.half_width), fmt(bound, 3),
           bench::verdict(core::theory::theorem44_population_condition(
               params, static_cast<double>(n))),
           bench::verdict(finite.regret.mean - finite.regret.half_width <= bound)});
    }
  }
  bench::emit(table, options);
  std::printf("Note: delta = %.3f, mu = %.4f, T* = %llu; eta = (0.85, 0.35 x %zu).\n",
              params.delta(), params.mu, static_cast<unsigned long long>(t_star), m - 1);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e03_finite_regret", "Theorem 4.4: finite-population regret <= 6 delta", 200);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
