// Experiment E14 — the distributed low-memory MWU on a sensor network
// (§1 and §6: "perhaps appropriate for low-power devices in distributed
// settings such as sensor networks or the internet-of-things").
//
// Each node stores one integer and runs the gossip protocol over a lossy,
// asynchronous network (discrete-event simulation).  We sweep packet loss
// and crash faults, reporting convergence, regret, and message cost.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/theory.h"
#include "graph/graph.h"
#include "protocol/gossip_learner.h"
#include "support/stats.h"

namespace {

using namespace sgl;

constexpr std::size_t k_nodes = 200;
constexpr std::uint64_t k_rounds = 300;

struct case_spec {
  std::string name;
  double drop = 0.0;
  double crash_fraction = 0.0;
  bool sticky = false;
  bool use_grid = false;
  bool split_brain = false;
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E14: Low-memory distributed MWU on a simulated sensor network (Sections 1, 6)",
      "Claim: one-integer-per-node gossip implements the dynamics; convergence "
      "survives packet loss and crash faults, at ~2 messages/node/round.");

  const std::vector<double> etas{0.9, 0.4, 0.4};  // e.g. radio channels
  const core::dynamics_params params = core::theorem_params(3, 0.65);
  const graph::graph grid = graph::graph::grid(20, 10, true);

  const std::vector<case_spec> cases{
      {"complete, lossless", 0.0, 0.0, false, false},
      {"complete, 10% loss", 0.1, 0.0, false, false},
      {"complete, 30% loss", 0.3, 0.0, false, false},
      {"complete, 50% loss", 0.5, 0.0, false, false},
      {"complete, 20% crash @ r50", 0.1, 0.2, false, false},
      {"complete, sticky mode", 0.1, 0.0, true, false},
      {"torus 20x10, 10% loss", 0.1, 0.0, false, true},
      {"split-brain r80..160", 0.1, 0.0, false, false, true},
  };

  text_table table{{"scenario", "final best frac", "avg regret", "msgs/node/round",
                    "kB total", "drop rate", "converged"}};

  for (const auto& c : cases) {
    // Average the protocol outcome over a few seeds (each run is a full
    // discrete-event simulation).
    running_stats final_frac;
    running_stats regret;
    running_stats msg_rate;
    running_stats drop_rate;
    double bytes = 0.0;
    const std::uint64_t runs = std::max<std::uint64_t>(3, options.replications / 10);
    for (std::uint64_t rep = 0; rep < runs; ++rep) {
      protocol::gossip_params gossip;
      gossip.dynamics = params;
      gossip.sticky = c.sticky;
      protocol::signal_oracle oracle{etas, options.seed + 1000 + rep};
      protocol::gossip_run_config config;
      config.num_nodes = k_nodes;
      config.rounds = k_rounds;
      config.seed = options.seed + rep;
      config.links.base_latency = 0.05;
      config.links.jitter_mean = 0.05;
      config.links.drop_probability = c.drop;
      config.crash_fraction = c.crash_fraction;
      config.crash_round = c.crash_fraction > 0.0 ? 50 : 0;
      if (c.split_brain) {
        config.partition_round = 80;
        config.heal_round = 160;
      }
      if (c.use_grid) config.topology = &grid;

      const protocol::gossip_run_result result =
          protocol::run_gossip_experiment(gossip, oracle, config);
      running_stats late;
      for (std::uint64_t t = k_rounds - 50; t < k_rounds; ++t) {
        late.add(result.best_fraction[t]);
      }
      final_frac.add(late.mean());
      regret.add(result.average_regret);
      msg_rate.add(static_cast<double>(result.net.messages_sent) /
                   (static_cast<double>(k_nodes) * static_cast<double>(k_rounds)));
      drop_rate.add(result.net.messages_sent == 0
                        ? 0.0
                        : static_cast<double>(result.net.messages_dropped) /
                              static_cast<double>(result.net.messages_sent));
      bytes += static_cast<double>(result.net.bytes_sent());
    }
    table.add_row({c.name, fmt_pm(final_frac.mean(), 2.0 * final_frac.stderror()),
                   fmt(regret.mean(), 4), fmt(msg_rate.mean(), 2),
                   fmt(bytes / static_cast<double>(runs) / 1024.0, 0),
                   fmt(drop_rate.mean(), 3),
                   bench::verdict(final_frac.mean() > 0.6)});
  }
  bench::emit(table, options);
  std::printf("N = %zu nodes, %llu rounds, m = 3 'channels', eta = (0.9, 0.4, 0.4), "
              "beta = 0.65.\nShape: loss and crashes slow convergence but do not "
              "break it; per-node state is a single int throughout.\n",
              k_nodes, static_cast<unsigned long long>(k_rounds));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e14_sensor_network", "Distributed MWU over a lossy sensor network", 30);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
