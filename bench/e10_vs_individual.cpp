// Experiment E10 — group learning vs individual bandit learners (§1, §6).
//
// The paper's framing: an individual in the group faces a stochastic bandit
// (it only sees one option's signal per step), yet the group as a whole
// solves the full-information problem.  We pit the social dynamics against
// a population of N *independent* bandit learners — each with per-arm
// memory — and against the no-learning floor, reporting group-average
// regret and the per-agent memory footprint.
//
// The point is not that copying beats UCB; it is that a population with ONE
// integer of state per agent lands in the same league as full-memory
// learners, which is the paper's "why is this heuristic everywhere" answer.

#include <algorithm>
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "algo/bandit.h"
#include "algo/exp3.h"
#include "core/finite_dynamics.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/stats.h"

namespace {

using namespace sgl;

constexpr std::size_t k_options = 5;
constexpr std::size_t k_agents = 500;
constexpr std::uint64_t k_horizon = 400;

/// One replication of a bandit-population run; returns average regret.
template <typename MakePolicy>
double bandit_population_regret(MakePolicy make_policy, const std::vector<double>& etas,
                                std::uint64_t seed, std::size_t rep) {
  rng env_gen = rng::from_stream(seed, 2 * rep);
  rng agent_gen = rng::from_stream(seed, 2 * rep + 1);
  env::bernoulli_rewards environment{etas};
  std::vector<decltype(make_policy())> agents;
  agents.reserve(k_agents);
  for (std::size_t i = 0; i < k_agents; ++i) agents.push_back(make_policy());
  std::vector<std::uint8_t> r(k_options);
  double total = 0.0;
  for (std::uint64_t t = 1; t <= k_horizon; ++t) {
    environment.sample(t, env_gen, r);
    for (auto& agent : agents) {
      const std::size_t arm = agent.select(agent_gen);
      agent.update(arm, r[arm]);
      total += static_cast<double>(r[arm]);
    }
  }
  return etas[0] - total / static_cast<double>(k_agents * k_horizon);
}

template <typename MakePolicy>
running_stats sweep_bandits(MakePolicy make_policy, const std::vector<double>& etas,
                            const bench::standard_options& options) {
  return parallel_reduce<running_stats>(
      options.replications, [] { return running_stats{}; },
      [&](running_stats& s, std::size_t rep) {
        s.add(bandit_population_regret(make_policy, etas, options.seed, rep));
      },
      [](running_stats& into, const running_stats& from) { into.merge(from); },
      options.threads);
}

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E10: Social group vs populations of individual learners (Sections 1, 6)",
      "Claim: the memoryless copying dynamics is competitive with full-memory "
      "individual bandit algorithms at the group level.");

  const auto etas = env::two_level_etas(k_options, 0.85, 0.35);

  // Social dynamics.
  auto social = parallel_reduce<running_stats>(
      options.replications, [] { return running_stats{}; },
      [&](running_stats& s, std::size_t rep) {
        rng env_gen = rng::from_stream(options.seed, 2 * rep);
        rng group_gen = rng::from_stream(options.seed, 2 * rep + 1);
        env::bernoulli_rewards environment{etas};
        const core::dynamics_params params = core::theorem_params(k_options, 0.62);
        core::finite_dynamics group{params, k_agents};
        std::vector<std::uint8_t> r(k_options);
        double total = 0.0;
        for (std::uint64_t t = 1; t <= k_horizon; ++t) {
          const auto q = group.popularity();
          environment.sample(t, env_gen, r);
          for (std::size_t j = 0; j < k_options; ++j) total += q[j] * r[j];
          group.step(r, group_gen);
        }
        s.add(etas[0] - total / static_cast<double>(k_horizon));
      },
      [](running_stats& into, const running_stats& from) { into.merge(from); },
      options.threads);

  const double gamma = algo::exp3_optimal_gamma(k_options, k_horizon);
  const running_stats exp3_stats =
      sweep_bandits([gamma] { return algo::exp3{k_options, gamma}; }, etas, options);
  const running_stats ucb =
      sweep_bandits([] { return algo::ucb1{k_options}; }, etas, options);
  const running_stats thompson =
      sweep_bandits([] { return algo::thompson_sampling{k_options}; }, etas, options);
  const running_stats greedy =
      sweep_bandits([] { return algo::epsilon_greedy{k_options, 0.1}; }, etas, options);
  const running_stats random =
      sweep_bandits([] { return algo::random_bandit{k_options}; }, etas, options);

  text_table table{{"policy", "per-agent memory", "group avg regret"}};
  const auto row = [&](const std::string& name, const std::string& memory,
                       const running_stats& s) {
    table.add_row({name, memory, fmt_pm(s.mean(), 2.0 * s.stderror())});
  };
  row("social dynamics (this paper)", "1 int", social);
  row("independent EXP3 (tuned)", "m weights", exp3_stats);
  row("independent UCB1", "2m counters", ucb);
  row("independent Thompson", "2m counters", thompson);
  row("independent eps-greedy(0.1)", "2m counters", greedy);
  row("independent uniform random", "none", random);
  bench::emit(table, options);
  std::printf("N = %zu agents, m = %zu options, T = %llu, eta = (0.85, 0.35 ...).\n",
              k_agents, k_options, static_cast<unsigned long long>(k_horizon));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e10_vs_individual", "Group dynamics vs individual bandit populations", 60);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
