// Experiment E6 — the popularity floor of §4.3.2.
//
// Claim: with probability ≥ 1 − 6m/N¹⁰ at every step, every option keeps
//   Q^t_j ≥ ζ = μ(1−β)/(4m),
// which is what lets the large-T analysis restart epochs from a ζ-floored
// distribution.  We run long horizons (20 epochs) through the generic
// probe runner with the popularity_floor probe (the "Lemma audit" metric)
// and report the worst min-popularity seen and the per-step violation
// frequency.

#include <cmath>
#include <memory>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/probe.h"
#include "core/theory.h"
#include "env/reward_model.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E6: Popularity floor Q^t_j >= mu(1-beta)/(4m) (Section 4.3.2)",
      "Claim: w.h.p. no option's popularity ever falls below zeta; epochs can "
      "restart from a zeta-floored state.");

  text_table table{{"m", "beta", "N", "zeta", "epoch len", "T", "worst min Q",
                    "viol. rate", "holds"}};

  for (const std::size_t m : {std::size_t{2}, std::size_t{10}}) {
    for (const std::uint64_t n : {1000ULL, 10000ULL, 100000ULL}) {
      constexpr double beta = 0.62;
      const core::dynamics_params params = core::theorem_params(m, beta);
      const double zeta = core::theory::popularity_floor(m, params.mu, beta);
      const double epoch = core::theory::epoch_length(m, params.mu, beta);
      const auto horizon = static_cast<std::uint64_t>(std::ceil(20.0 * epoch));
      const auto etas = env::two_level_etas(m, 0.85, 0.35);

      core::run_config config;
      config.horizon = horizon;
      config.replications = options.replications;
      config.seed = options.seed;
      config.threads = options.threads;
      const core::popularity_floor_probe prototype{zeta};
      const core::probe* probes[] = {&prototype};
      const auto merged = core::run_with_probes(
          core::make_finite_engine_factory(params, n),
          [&etas] { return std::make_unique<env::bernoulli_rewards>(etas); }, config,
          probes);
      const auto& floor =
          dynamic_cast<const core::popularity_floor_probe&>(*merged[0]);

      table.add_row({std::to_string(m), fmt(beta, 2), std::to_string(n),
                     fmt_sci(zeta, 2), fmt(epoch, 1), std::to_string(horizon),
                     fmt_sci(floor.min_popularity_stats().min(), 2),
                     fmt(floor.violation_rate_stats().mean(), 4),
                     bench::verdict(floor.violation_rate_stats().mean() < 0.05)});
    }
  }
  bench::emit(table, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e06_popularity_floor", "Section 4.3.2: popularity never drops below zeta", 60);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
