// Experiment E6 — the popularity floor of §4.3.2.
//
// Claim: with probability ≥ 1 − 6m/N¹⁰ at every step, every option keeps
//   Q^t_j ≥ ζ = μ(1−β)/(4m),
// which is what lets the large-T analysis restart epochs from a ζ-floored
// distribution.  We run long horizons (20 epochs) and report the worst
// min-popularity seen and the per-step violation frequency.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/aggregate_dynamics.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

struct floor_stats {
  running_stats min_popularity;  // min over (t, j) per replication
  running_stats violation_rate;  // fraction of steps with min_j Q < zeta
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E6: Popularity floor Q^t_j >= mu(1-beta)/(4m) (Section 4.3.2)",
      "Claim: w.h.p. no option's popularity ever falls below zeta; epochs can "
      "restart from a zeta-floored state.");

  text_table table{{"m", "beta", "N", "zeta", "epoch len", "T", "worst min Q",
                    "viol. rate", "holds"}};

  for (const std::size_t m : {std::size_t{2}, std::size_t{10}}) {
    for (const std::uint64_t n : {1000ULL, 10000ULL, 100000ULL}) {
      constexpr double beta = 0.62;
      const core::dynamics_params params = core::theorem_params(m, beta);
      const double zeta = core::theory::popularity_floor(m, params.mu, beta);
      const double epoch = core::theory::epoch_length(m, params.mu, beta);
      const auto horizon = static_cast<std::uint64_t>(std::ceil(20.0 * epoch));
      const auto etas = env::two_level_etas(m, 0.85, 0.35);

      auto stats = parallel_reduce<floor_stats>(
          options.replications, [] { return floor_stats{}; },
          [&](floor_stats& fs, std::size_t rep) {
            rng process_gen = rng::from_stream(options.seed, 2 * rep);
            rng env_gen = rng::from_stream(options.seed, 2 * rep + 1);
            env::bernoulli_rewards environment{etas};
            core::aggregate_dynamics dyn{params, n};
            std::vector<std::uint8_t> r(m);
            double worst = 1.0;
            std::uint64_t violations = 0;
            for (std::uint64_t t = 1; t <= horizon; ++t) {
              environment.sample(t, env_gen, r);
              dyn.step(r, process_gen);
              double min_q = 1.0;
              for (const double q : dyn.popularity()) min_q = std::min(min_q, q);
              worst = std::min(worst, min_q);
              if (min_q < zeta) ++violations;
            }
            fs.min_popularity.add(worst);
            fs.violation_rate.add(static_cast<double>(violations) /
                                  static_cast<double>(horizon));
          },
          [](floor_stats& into, const floor_stats& from) {
            into.min_popularity.merge(from.min_popularity);
            into.violation_rate.merge(from.violation_rate);
          },
          options.threads);

      table.add_row({std::to_string(m), fmt(beta, 2), std::to_string(n),
                     fmt_sci(zeta, 2), fmt(epoch, 1), std::to_string(horizon),
                     fmt_sci(stats.min_popularity.min(), 2),
                     fmt(stats.violation_rate.mean(), 4),
                     bench::verdict(stats.violation_rate.mean() < 0.05)});
    }
  }
  bench::emit(table, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e06_popularity_floor", "Section 4.3.2: popularity never drops below zeta", 60);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
