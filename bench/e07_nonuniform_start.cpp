// Experiment E7 — Theorem 4.6 (nonuniform starts / the epoch engine).
//
// Claim: if P⁰_j ≥ ζ for all j, then for T ≥ ln(1/ζ)/δ² the regret is
// still ≤ 3δ.  This is the workhorse behind the large-T epoch argument of
// Theorem 4.4: each epoch restarts from a ζ-floored distribution.
//
// We start the infinite dynamics from the *hostile* ζ-floor state (all but
// ζ(m−1) of the mass on the worst option) and sweep ζ.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "scenario/registry.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E7: Regret from nonuniform starts (Theorem 4.6)",
      "Claim: min_j P^0_j >= zeta implies Regret_inf(T) <= 3*delta once "
      "T >= ln(1/zeta)/delta^2, even from the most hostile such start.");

  constexpr std::size_t m = 5;
  text_table table{{"beta", "zeta", "T(zeta)", "T", "Regret_inf", "bound 3d",
                    "within"}};

  for (const double beta : {0.6, 0.65}) {
    // The registered hostile-start scenario, re-parameterized per sweep cell.
    scenario::scenario_spec spec = scenario::get_scenario("nonuniform-start");
    spec.params = core::theorem_params(m, beta);
    spec.environment.etas = env::two_level_etas(m, 0.85, 0.35);
    const double bound = core::theory::infinite_regret_bound(beta);

    for (const double zeta : {0.05, 0.01, 0.001}) {
      // Hostile ζ-floor start: the bulk of the mass on the worst option.
      spec.start.assign(m, zeta);
      spec.start[m - 1] = 1.0 - zeta * static_cast<double>(m - 1);

      const auto t_zeta = static_cast<std::uint64_t>(
          std::ceil(std::max(core::theory::nonuniform_min_horizon(zeta, beta), 8.0)));
      for (const std::uint64_t multiple : {1ULL, 4ULL}) {
        core::run_config config;
        config.horizon = t_zeta * multiple;
        config.replications = options.replications;
        config.seed = options.seed;
        config.threads = options.threads;
        const core::regret_estimate est = scenario::run(spec, config).scalars;
        table.add_row(
            {fmt(beta, 2), fmt(zeta, 3), std::to_string(t_zeta),
             std::to_string(config.horizon),
             fmt_pm(est.regret.mean, est.regret.half_width), fmt(bound, 3),
             bench::verdict(est.regret.mean - est.regret.half_width <= bound)});
      }
    }
  }
  bench::emit(table, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e07_nonuniform_start", "Theorem 4.6: regret from zeta-floored starts", 150);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
