// Experiment E17 — mixing, burn-in, and where the regret lives.
//
// Supplementary analysis the paper's discussion implies but never plots:
//
//   * how long the dynamics takes to reach its steady state (burn-in) and
//     how correlated the steady-state trajectory is (integrated
//     autocorrelation time τ_int) as a function of β — the "speed vs
//     steady-error" face of the δ tradeoff;
//   * a decomposition of the steady-state regret into the structural
//     μ-exploration floor vs genuine mis-concentration, showing that once
//     converged, essentially *all* remaining regret is the exploration tax
//     (so the 3δ bound's looseness is the price of the μ > 0 hypothesis).
//
// Uses the analysis module (autocorrelation, burn-in, block bootstrap,
// regret decomposition) on long single trajectories.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "analysis/decomposition.h"
#include "analysis/timeseries.h"
#include "core/aggregate_dynamics.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E17: Mixing time, burn-in, and regret decomposition (analysis suite)",
      "How fast does the chain settle, how sticky is it once settled, and "
      "how much of the steady regret is just the mu-exploration tax?");

  constexpr std::size_t m = 3;
  constexpr std::uint64_t n = 20000;
  constexpr std::uint64_t horizon = 20000;
  const std::vector<double> etas{0.85, 0.35, 0.35};

  text_table table{{"beta", "delta", "mu", "burn-in", "tau_int", "ESS/T",
                    "steady regret (bootstrap CI)", "exploration floor",
                    "convergence excess"}};

  for (const double beta : {0.55, 0.6, 0.65, 0.7, 0.73}) {
    const core::dynamics_params params = core::theorem_params(m, beta);
    rng process_gen = rng::from_stream(options.seed, 0);
    rng env_gen = rng::from_stream(options.seed, 1);
    env::bernoulli_rewards environment{etas};
    core::aggregate_dynamics dyn{params, n};

    std::vector<double> best_mass;
    best_mass.reserve(horizon);
    std::vector<std::uint8_t> r(m);
    std::vector<double> mean_mass(m, 0.0);
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      environment.sample(t, env_gen, r);
      dyn.step(r, process_gen);
      best_mass.push_back(dyn.popularity()[0]);
    }

    // Warm-up: first time the trajectory reaches the steady band (tail mean
    // minus 3 tail sd).  The stricter analysis::burn_in ("stays inside the
    // band forever after") is deliberately not used here: the paper notes
    // the process "may step away significantly from Q ≈ 1 even for large t",
    // and those excursions are steady-state behaviour, not warm-up.
    running_stats tail;
    for (std::size_t t = best_mass.size() - best_mass.size() / 4;
         t < best_mass.size(); ++t) {
      tail.add(best_mass[t]);
    }
    const std::size_t settle = std::min<std::size_t>(
        analysis::hitting_time(best_mass, tail.mean() - 3.0 * tail.stddev()),
        static_cast<std::size_t>(horizon) / 2);
    const std::span<const double> steady{best_mass.data() + settle,
                                         best_mass.size() - settle};
    const double tau = analysis::integrated_autocorrelation_time(steady);
    const double ess_fraction =
        analysis::effective_sample_size(steady) / static_cast<double>(steady.size());

    // Steady-state mean popularity vector: deterministic replay of the same
    // trajectory (same streams), accumulating every option this time.
    rng process_gen2 = rng::from_stream(options.seed, 0);
    rng env_gen2 = rng::from_stream(options.seed, 1);
    env::bernoulli_rewards environment2{etas};
    core::aggregate_dynamics dyn2{params, n};
    std::fill(mean_mass.begin(), mean_mass.end(), 0.0);
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      environment2.sample(t, env_gen2, r);
      dyn2.step(r, process_gen2);
      if (t > settle) {
        for (std::size_t j = 0; j < m; ++j) mean_mass[j] += dyn2.popularity()[j];
      }
    }
    for (double& x : mean_mass) x /= static_cast<double>(horizon - settle);

    const analysis::regret_breakdown breakdown =
        analysis::decompose_regret(mean_mass, etas, params);
    const mean_ci regret_ci = [&] {
      std::vector<double> regret_series(steady.size());
      for (std::size_t i = 0; i < steady.size(); ++i) {
        // per-step regret given best mass q: (1-q) spread over equal gaps
        regret_series[i] = (1.0 - steady[i]) * (0.85 - 0.35);
      }
      return analysis::block_bootstrap_mean(regret_series, 0.95, 0, 800,
                                            options.seed);
    }();

    table.add_row({fmt(beta, 2), fmt(params.delta(), 3), fmt(params.mu, 4),
                   std::to_string(settle), fmt(tau, 1), fmt(ess_fraction, 3),
                   fmt_pm(regret_ci.mean, regret_ci.half_width, 4),
                   fmt(breakdown.exploration_floor, 4),
                   fmt(breakdown.convergence_excess, 4)});
  }
  bench::emit(table, options);
  std::printf("N = %llu, T = %llu, eta = (0.85, 0.35, 0.35); steady statistics "
              "computed after the detected burn-in,\nwith block-bootstrap CIs "
              "(the trajectory is strongly autocorrelated — see tau_int).\n"
              "Shape: larger delta = stronger drift = faster mixing (smaller "
              "tau_int) but a bigger exploration\nfloor (mu = delta^2/6); small "
              "beta pays almost no floor but its steady trajectory is glassy\n"
              "(tau_int large) and its residual regret is fluctuation-driven — "
              "the two faces of the delta knob.\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(horizon));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e17_mixing", "Mixing time, burn-in, and regret decomposition", 1);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
