// Experiment E16 — the deterministic special case and the proof audit (§3, §5).
//
// Two companion checks of the analysis machinery:
//
// (a) §3 notes that removing all randomness turns the dynamics into classic
//     deterministic MWU.  The mean-field fixed point of that map predicts
//     the steady-state population split; we print it next to the measured
//     long-run time average of the stochastic dynamics (finite and
//     infinite).  Agreement validates both the implementation and the
//     "popularity = weights" reading.
//
// (b) §5's proof of Theorem 4.3 rests on pathwise potential bounds.  We run
//     the proof_auditor along live trajectories and report the worst slack
//     ever observed — a nonnegative number certifies that every proof
//     inequality held on every step of every replication.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/aggregate_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/mean_field.h"
#include "core/proof_audit.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E16: Mean-field fixed point & pathwise proof audit (Sections 3, 5)",
      "(a) The deterministic-MWU fixed point predicts the stochastic "
      "steady state; (b) every Theorem-4.3 proof inequality holds pathwise.");

  // --- (a) mean-field predictions -------------------------------------------
  text_table prediction{{"m", "beta", "predicted best mass", "measured (infinite)",
                         "measured (N=10^5)", "predicted regret", "measured regret"}};

  for (const std::size_t m : {std::size_t{2}, std::size_t{5}}) {
    for (const double beta : {0.55, 0.62, 0.7}) {
      const core::dynamics_params params = core::theorem_params(m, beta);
      const auto etas = env::two_level_etas(m, 0.85, 0.35);
      core::mean_field_map map{params, etas};
      map.solve_fixed_point();
      const double predicted_mass = map.state()[0];
      const double predicted_regret = map.steady_state_regret();

      struct pair_stats {
        running_stats infinite_mass;
        running_stats finite_mass;
        running_stats regret;
      };
      const std::uint64_t warmup = 2000;
      const std::uint64_t horizon = 6000;
      auto measured = parallel_reduce<pair_stats>(
          options.replications, [] { return pair_stats{}; },
          [&](pair_stats& s, std::size_t rep) {
            rng env_gen = rng::from_stream(options.seed, 3 * rep);
            rng env_gen2 = rng::from_stream(options.seed, 3 * rep);  // same rewards
            rng process_gen = rng::from_stream(options.seed, 3 * rep + 1);
            env::bernoulli_rewards environment{etas};
            env::bernoulli_rewards environment2{etas};
            core::infinite_dynamics inf{params};
            core::aggregate_dynamics fin{params, 100000};
            std::vector<std::uint8_t> r(m);
            double inf_mass = 0.0;
            double fin_mass = 0.0;
            double reward = 0.0;
            for (std::uint64_t t = 1; t <= horizon; ++t) {
              environment.sample(t, env_gen, r);
              inf.step(r);
              if (t > warmup) {
                inf_mass += inf.distribution()[0];
                for (std::size_t j = 0; j < m; ++j) {
                  reward += inf.distribution()[j] * etas[j];
                }
              }
            }
            for (std::uint64_t t = 1; t <= horizon; ++t) {
              environment2.sample(t, env_gen2, r);
              fin.step(r, process_gen);
              if (t > warmup) fin_mass += fin.popularity()[0];
            }
            const double steps = static_cast<double>(horizon - warmup);
            s.infinite_mass.add(inf_mass / steps);
            s.finite_mass.add(fin_mass / steps);
            s.regret.add(etas[0] - reward / steps);
          },
          [](pair_stats& into, const pair_stats& from) {
            into.infinite_mass.merge(from.infinite_mass);
            into.finite_mass.merge(from.finite_mass);
            into.regret.merge(from.regret);
          },
          options.threads);

      prediction.add_row({std::to_string(m), fmt(beta, 2), fmt(predicted_mass, 4),
                          fmt(measured.infinite_mass.mean(), 4),
                          fmt(measured.finite_mass.mean(), 4),
                          fmt(predicted_regret, 4), fmt(measured.regret.mean(), 4)});
    }
  }
  std::printf("(a) Mean-field fixed point vs stochastic steady state "
              "(time-average after warm-up):\n");
  bench::emit(prediction, options);

  // --- (b) pathwise proof audit ----------------------------------------------
  text_table audit{{"m", "beta", "trajectories", "steps each", "worst slack",
                    "all inequalities hold"}};
  for (const std::size_t m : {std::size_t{2}, std::size_t{10}}) {
    for (const double beta : {0.55, 0.65, 0.73}) {
      const core::dynamics_params params = core::theorem_params(m, beta);
      const auto etas = env::two_level_etas(m, 0.85, 0.35);
      auto worst = parallel_reduce<running_stats>(
          options.replications, [] { return running_stats{}; },
          [&](running_stats& s, std::size_t rep) {
            core::infinite_dynamics dyn{params};
            core::proof_auditor auditor{params};
            env::bernoulli_rewards environment{etas};
            rng gen = rng::from_stream(options.seed + 5, rep);
            s.add(core::audit_run(dyn, auditor, 1000,
                                  [&](std::uint64_t t, std::span<std::uint8_t> out) {
                                    environment.sample(t, gen, out);
                                  }));
          },
          [](running_stats& into, const running_stats& from) { into.merge(from); },
          options.threads);
      audit.add_row({std::to_string(m), fmt(beta, 2),
                     std::to_string(options.replications), "1000",
                     fmt(worst.min(), 4), bench::verdict(worst.min() >= -1e-9)});
    }
  }
  std::printf("(b) Pathwise audit of the Theorem 4.3 proof inequalities "
              "(potential upper/lower bounds +\n    the combined regret "
              "inequality, checked at every step):\n");
  bench::emit(audit, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e16_mean_field", "Mean-field predictions and the pathwise proof audit", 40);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
