// Experiment E9 — the β tradeoff and the tuned-MWU comparison (§6).
//
// Claims: (a) "the closer β is to 1/2, the better the regret" — the 3δ
// bound shrinks, at the cost of a longer minimum horizon ln m/δ²;
// (b) an algorithm designer free to pick β can tune the effective learning
// rate to the horizon and recover the classic O(√(ln m/T)) Hedge regret,
// whereas the social dynamics is pinned to the group's β.
//
// We sweep β at two fixed horizons and print, as the yardstick, Hedge with
// the optimally tuned rate on the same reward stream.

#include <algorithm>
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "algo/full_info.h"
#include "core/experiment.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/stats.h"

namespace {

using namespace sgl;

/// Regret of a full-information policy on the bernoulli environment.
double hedge_regret(std::size_t m, double rate, const std::vector<double>& etas,
                    std::uint64_t horizon, std::uint64_t reps, std::uint64_t seed,
                    unsigned threads) {
  auto stats = parallel_reduce<running_stats>(
      reps, [] { return running_stats{}; },
      [&](running_stats& s, std::size_t rep) {
        rng env_gen = rng::from_stream(seed, rep);
        env::bernoulli_rewards environment{etas};
        algo::hedge policy{m, rate};
        std::vector<std::uint8_t> r(m);
        double reward_sum = 0.0;
        for (std::uint64_t t = 1; t <= horizon; ++t) {
          const auto dist = policy.distribution();
          environment.sample(t, env_gen, r);
          for (std::size_t j = 0; j < m; ++j) reward_sum += dist[j] * r[j];
          policy.update(r);
        }
        s.add(etas[0] - reward_sum / static_cast<double>(horizon));
      },
      [](running_stats& into, const running_stats& from) { into.merge(from); }, threads);
  return stats.mean();
}

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E9: The beta tradeoff, vs horizon-tuned Hedge (Section 6)",
      "Claim: smaller beta -> smaller 3*delta bound but longer warm-up; a tuned "
      "learning rate achieves O(sqrt(ln m / T)).");

  constexpr std::size_t m = 10;
  const auto etas = env::two_level_etas(m, 0.85, 0.35);

  text_table table{{"T", "beta", "delta", "ln(m)/d^2", "Regret_inf", "bound 3d"}};

  for (const std::uint64_t horizon : {100ULL, 1000ULL}) {
    for (const double beta : {0.52, 0.55, 0.58, 0.62, 0.66, 0.70, 0.73}) {
      const core::dynamics_params params = core::theorem_params(m, beta);
      core::run_config config;
      config.horizon = horizon;
      config.replications = options.replications;
      config.seed = options.seed;
      config.threads = options.threads;
      const core::regret_estimate est = core::estimate_infinite_regret(
          params, [&] { return std::make_unique<env::bernoulli_rewards>(etas); },
          config);
      table.add_row({std::to_string(horizon), fmt(beta, 2), fmt(params.delta(), 3),
                     fmt(core::theory::min_horizon(m, beta), 1),
                     fmt_pm(est.regret.mean, est.regret.half_width),
                     fmt(core::theory::infinite_regret_bound(beta), 3)});
    }
    // Yardstick: Hedge at the horizon-optimal rate.
    const double rate = algo::hedge_optimal_rate(m, horizon);
    const double tuned = hedge_regret(m, rate, etas, horizon, options.replications,
                                      options.seed, options.threads);
    table.add_row({std::to_string(horizon), "tuned", fmt(rate, 3), "-",
                   fmt(tuned, 4),
                   fmt(std::sqrt(std::log(static_cast<double>(m)) /
                                 (2.0 * static_cast<double>(horizon))),
                       4)});
  }
  bench::emit(table, options);
  std::printf("Shape: at T=100 large beta wins (fast warm-up); at T=1000 small beta "
              "wins (small steady bound);\nthe tuned rate beats both, matching the "
              "designer-vs-group remark in Section 6.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e09_beta_tradeoff", "Section 6: beta tradeoff and tuned-MWU yardstick", 150);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
