// Experiment E13 — the Ellison–Fudenberg word-of-mouth reduction (§2.1 ex. 2).
//
// The paper converts the EF model (two options, continuous Normal rewards,
// player-specific Normal shocks, pairwise noisy comparison) into the binary
// framework via η₁ = P[r₁>r₂], β = P[ξ > r₂−r₁ | r₁>r₂], α = … | r₂>r₁.
//
// We (a) print the computed reduction across shock levels, and (b) simulate
// the shock-level model *directly* next to the reduced binary dynamics on
// exclusive rewards, showing the two agree on popularity and regret — the
// empirical content of "our framework applies".

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/finite_dynamics.h"
#include "env/ef_model.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

constexpr std::size_t k_agents = 500;
constexpr std::uint64_t k_horizon = 300;
constexpr double k_mu = 0.05;

struct pair_outcome {
  running_stats direct_mass;
  running_stats reduced_mass;
  running_stats direct_regret;
  running_stats reduced_regret;
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E13: Ellison-Fudenberg word-of-mouth reduction (Section 2.1, example 2)",
      "Claim: the continuous-reward + shocks model reduces to the binary "
      "framework with eta1 = P[r1>r2] and (alpha, beta) below; direct and "
      "reduced simulations must agree.");

  text_table reduction_table{{"shock sd", "eta1 = p", "alpha", "beta",
                              "alpha < beta"}};
  text_table agreement_table{{"shock sd", "late mass (direct)", "late mass (reduced)",
                              "|diff|", "regret (direct)", "regret (reduced)"}};

  for (const double shock_sd : {0.1, 0.2, 0.4}) {
    env::ef_params ef;
    ef.mean1 = 0.65;
    ef.mean2 = 0.45;
    ef.reward_sd = 0.25;
    ef.shock_sd = shock_sd;
    const env::ef_reduction reduced = env::reduce_ef_model(ef);
    reduction_table.add_row({fmt(shock_sd, 2), fmt(reduced.eta1, 4),
                             fmt(reduced.alpha, 4), fmt(reduced.beta, 4),
                             bench::verdict(reduced.alpha < reduced.beta)});

    auto outcome = parallel_reduce<pair_outcome>(
        options.replications, [] { return pair_outcome{}; },
        [&](pair_outcome& out, std::size_t rep) {
          // Direct shock-level simulation.
          env::ef_direct_dynamics direct{ef, k_agents, k_mu};
          rng reward_gen = rng::from_stream(options.seed, 3 * rep);
          rng pop_gen = rng::from_stream(options.seed, 3 * rep + 1);
          running_stats late_mass;
          double direct_reward = 0.0;
          for (std::uint64_t t = 1; t <= k_horizon; ++t) {
            const double q1 = direct.popularity()[0];
            direct.step(reward_gen, pop_gen);
            const double r1 =
                direct.last_reward(0) > direct.last_reward(1) ? 1.0 : 0.0;
            direct_reward += q1 * r1 + (1.0 - q1) * (1.0 - r1);
            if (t > k_horizon / 2) late_mass.add(direct.popularity()[0]);
          }
          out.direct_mass.add(late_mass.mean());
          out.direct_regret.add(reduced.eta1 -
                                direct_reward / static_cast<double>(k_horizon));

          // Reduced binary dynamics on exclusive rewards.
          core::dynamics_params params;
          params.num_options = 2;
          params.mu = k_mu;
          params.beta = reduced.beta;
          params.alpha = reduced.alpha;
          core::finite_dynamics binary{params, k_agents};
          env::exclusive_rewards environment{{reduced.eta1, reduced.eta2}};
          rng env_gen = rng::from_stream(options.seed, 3 * rep + 2);
          rng bin_gen = rng::from_stream(options.seed + 99, rep);
          std::vector<std::uint8_t> r(2);
          running_stats late_reduced;
          double reduced_reward = 0.0;
          for (std::uint64_t t = 1; t <= k_horizon; ++t) {
            const double q1 = binary.popularity()[0];
            environment.sample(t, env_gen, r);
            reduced_reward += q1 * r[0] + (1.0 - q1) * r[1];
            binary.step(r, bin_gen);
            if (t > k_horizon / 2) late_reduced.add(binary.popularity()[0]);
          }
          out.reduced_mass.add(late_reduced.mean());
          out.reduced_regret.add(reduced.eta1 -
                                 reduced_reward / static_cast<double>(k_horizon));
        },
        [](pair_outcome& into, const pair_outcome& from) {
          into.direct_mass.merge(from.direct_mass);
          into.reduced_mass.merge(from.reduced_mass);
          into.direct_regret.merge(from.direct_regret);
          into.reduced_regret.merge(from.reduced_regret);
        },
        options.threads);

    agreement_table.add_row(
        {fmt(shock_sd, 2),
         fmt_pm(outcome.direct_mass.mean(), 2.0 * outcome.direct_mass.stderror()),
         fmt_pm(outcome.reduced_mass.mean(), 2.0 * outcome.reduced_mass.stderror()),
         fmt(std::abs(outcome.direct_mass.mean() - outcome.reduced_mass.mean()), 3),
         fmt(outcome.direct_regret.mean(), 4), fmt(outcome.reduced_regret.mean(), 4)});
  }

  std::printf("Reduction (mean1=0.65, mean2=0.45, reward sd=0.25):\n");
  reduction_table.print(std::cout);
  std::printf("\nDirect vs reduced dynamics (N=%zu, T=%llu, mu=%.2f):\n", k_agents,
              static_cast<unsigned long long>(k_horizon), k_mu);
  bench::emit(agreement_table, options);
  std::printf("Shape: smaller shocks -> sharper (alpha, beta) -> faster "
              "concentration; the two simulations agree within noise at every "
              "shock level.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e13_ellison_fudenberg", "Section 2.1 ex 2: EF reduction, direct vs reduced", 60);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
