// Experiment E18 — decomposing the finite-population fluctuations.
//
// The steady-state popularity fluctuates for two distinct reasons:
//
//   (1) COMMON reward noise: the shared signals R^t_j buffet even the
//       infinite-population dynamics — this component does NOT shrink
//       with N;
//   (2) SAMPLING noise: the per-step multinomial/binomial randomness of a
//       finite population — this is the 1/√N component behind Lemma 4.5's
//       δ″ = √(60 m ln N/((1−β)μN)).
//
// Running the finite and infinite dynamics *coupled on the same rewards*
// (the lemma's coupling) isolates (2) as Q_best − P_best.  We report both
// components across three decades of N and fit the log-log slope of the
// sampling component against the CLT prediction −1/2.
//
// First attempt at this experiment measured sd(Q_best) alone and found it
// flat in N — the correct reading (kept here as the headline) is that the
// common reward noise dominates, and only the coupled difference scales.

#include <cmath>
#include <vector>

#include "bench_common.h"
#include "core/aggregate_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/mean_field.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

struct fluctuation_stats {
  running_stats total;     // Q_best samples (total fluctuation)
  running_stats sampling;  // Q_best - P_best under shared rewards
};

int run(const bench::standard_options& options) {
  bench::print_banner(
      "E18: Decomposing finite-population fluctuations (common vs sampling noise)",
      "sd(Q_best) is flat in N — the shared rewards are common noise felt even "
      "at N = inf; the coupled difference Q - P isolates the sampling noise, "
      "which must scale like 1/sqrt(N).");

  constexpr std::size_t m = 3;
  constexpr double beta = 0.62;
  const core::dynamics_params params = core::theorem_params(m, beta);
  const auto etas = env::two_level_etas(m, 0.85, 0.35);
  constexpr std::uint64_t warmup = 500;
  constexpr std::uint64_t horizon = 4000;

  core::mean_field_map map{params, etas};
  map.solve_fixed_point();

  text_table table{{"N", "mean Q_best", "sd(Q_best) total", "sd(Q-P) sampling",
                    "sd(Q-P)*sqrt(N)", "delta''(N)"}};
  std::vector<double> log_n;
  std::vector<double> log_sampling_sd;

  for (const std::uint64_t n : {1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    auto stats = parallel_reduce<fluctuation_stats>(
        options.replications, [] { return fluctuation_stats{}; },
        [&](fluctuation_stats& s, std::size_t rep) {
          rng process_gen = rng::from_stream(options.seed, 2 * rep);
          rng env_gen = rng::from_stream(options.seed, 2 * rep + 1);
          env::bernoulli_rewards environment{etas};
          core::aggregate_dynamics finite{params, n};
          core::infinite_dynamics infinite{params};
          std::vector<std::uint8_t> r(m);
          for (std::uint64_t t = 1; t <= horizon; ++t) {
            environment.sample(t, env_gen, r);
            finite.step(r, process_gen);  // same rewards: Lemma 4.5's coupling
            infinite.step(r);
            if (t > warmup && t % 25 == 0) {  // thin the correlated series
              s.total.add(finite.popularity()[0]);
              s.sampling.add(finite.popularity()[0] - infinite.distribution()[0]);
            }
          }
        },
        [](fluctuation_stats& into, const fluctuation_stats& from) {
          into.total.merge(from.total);
          into.sampling.merge(from.sampling);
        },
        options.threads);

    const double nd = static_cast<double>(n);
    table.add_row({std::to_string(n), fmt(stats.total.mean(), 4),
                   fmt_sci(stats.total.stddev(), 2),
                   fmt_sci(stats.sampling.stddev(), 2),
                   fmt(stats.sampling.stddev() * std::sqrt(nd), 3),
                   fmt_sci(core::theory::delta_double_prime(m, params.mu, beta, nd), 2)});
    log_n.push_back(std::log(nd));
    log_sampling_sd.push_back(std::log(stats.sampling.stddev()));
  }
  bench::emit(table, options);

  const ols_fit fit = fit_ols(log_n, log_sampling_sd);
  std::printf("log-log fit of the SAMPLING component: sd(Q-P) ~ N^%.3f   "
              "(CLT prediction: N^-0.5, R^2 = %.4f)\n", fit.slope, fit.r_squared);
  std::printf("mean-field mean prediction: %.4f.\n"
              "Shape: total fluctuation is N-independent (common reward noise "
              "dominates); the coupled\ndifference scales as 1/sqrt(N) — the CLT "
              "mechanism behind delta'' and hence Lemma 4.5.\n",
              map.state()[0]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e18_fluctuation_scaling",
      "Common vs sampling fluctuations; sampling component ~ 1/sqrt(N)", 20);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
