// Google-benchmark micro suite: throughput of the hot kernels behind the
// experiment harnesses.  The headline numbers are the per-step costs of the
// three dynamics engines — the aggregate engine's N-independence is what
// makes the Theorem 4.4 sweeps to N = 10^6 feasible.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algo/full_info.h"
#include "core/aggregate_dynamics.h"
#include "core/finite_dynamics.h"
#include "core/grouped_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/params.h"
#include "core/step_kernel.h"
#include "graph/graph.h"
#include "netsim/simulation.h"
#include "scenario/scenario.h"
#include "support/distributions.h"
#include "support/rng.h"

namespace {

using namespace sgl;

core::dynamics_params make_params(std::size_t m) {
  core::dynamics_params p;
  p.num_options = m;
  p.mu = 0.05;
  p.beta = 0.62;
  return p;
}

std::vector<std::uint8_t> random_rewards(std::size_t m, rng& gen) {
  std::vector<std::uint8_t> r(m);
  for (auto& x : r) x = gen.next_bernoulli(0.5) ? 1 : 0;
  return r;
}

void BM_rng_next_u64(benchmark::State& state) {
  rng gen{1};
  for (auto _ : state) benchmark::DoNotOptimize(gen.next_u64());
}
BENCHMARK(BM_rng_next_u64);

void BM_binomial_sample(benchmark::State& state) {
  rng gen{2};
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(sample_binomial(gen, n, 0.37));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_binomial_sample)->Arg(16)->Arg(1024)->Arg(1 << 20);

void BM_multinomial_sample(benchmark::State& state) {
  rng gen{3};
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(m, 1.0);
  std::vector<std::uint64_t> out(m);
  for (auto _ : state) {
    sample_multinomial(gen, 1000000, weights, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_multinomial_sample)->Arg(2)->Arg(10)->Arg(100);

void BM_alias_sampler_draw(benchmark::State& state) {
  rng gen{4};
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t j = 0; j < weights.size(); ++j) {
    weights[j] = static_cast<double>(j + 1);
  }
  const discrete_sampler sampler{weights};
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(gen));
}
BENCHMARK(BM_alias_sampler_draw)->Arg(10)->Arg(1000);

void BM_infinite_step(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::infinite_dynamics dyn{make_params(m)};
  rng gen{5};
  const auto rewards = random_rewards(m, gen);
  for (auto _ : state) dyn.step(rewards);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_infinite_step)->Arg(2)->Arg(10)->Arg(100);

void BM_aggregate_step(benchmark::State& state) {
  // O(m) per step — note the independence from N.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  core::aggregate_dynamics dyn{make_params(10), n};
  rng gen{6};
  rng reward_gen{7};
  const auto rewards = random_rewards(10, reward_gen);
  for (auto _ : state) dyn.step(rewards, gen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_aggregate_step)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_agent_based_step(benchmark::State& state) {
  // Homogeneous + fully mixed: the batched multinomial/binomial path — O(m)
  // sampling plus an O(N) fill of the per-agent choices.
  const auto n = static_cast<std::size_t>(state.range(0));
  core::finite_dynamics dyn{make_params(10), n};
  rng gen{8};
  rng reward_gen{9};
  const auto rewards = random_rewards(10, reward_gen);
  for (auto _ : state) dyn.step(rewards, gen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    static_cast<std::int64_t>(n)));
}
BENCHMARK(BM_agent_based_step)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_agent_based_step_heterogeneous(benchmark::State& state) {
  // Per-agent rules force the O(N) loop — the price of heterogeneity.
  const auto n = static_cast<std::size_t>(state.range(0));
  core::finite_dynamics dyn{make_params(10), n};
  dyn.set_agent_rules(std::vector<core::adoption_rule>(n, {0.35, 0.65}));
  rng gen{8};
  rng reward_gen{9};
  const auto rewards = random_rewards(10, reward_gen);
  for (auto _ : state) dyn.step(rewards, gen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    static_cast<std::int64_t>(n)));
}
BENCHMARK(BM_agent_based_step_heterogeneous)->Arg(1000)->Arg(10000);

void BM_grouped_step(benchmark::State& state) {
  // Exact aggregate of a G-group rule mixture: O(G·m), independent of N.
  const auto groups = static_cast<std::size_t>(state.range(0));
  std::vector<core::rule_group> mixture(groups, {1000000, {0.35, 0.65}});
  core::grouped_dynamics dyn{make_params(10), mixture};
  rng gen{8};
  rng reward_gen{9};
  const auto rewards = random_rewards(10, reward_gen);
  for (auto _ : state) dyn.step(rewards, gen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_grouped_step)->Arg(2)->Arg(8);

// --- network-mode stepping ---------------------------------------------------
//
// The topology path of finite_dynamics (§6, open problem 1).  Engines are
// warmed past the low-commitment transient so the loop measures the steady
// state; graphs are built once and cached across benchmarks.  Two regimes:
//   * dense  — beta = 0.62, best option always good: ~55-60% of the group is
//     committed each step (the paper's converged regime);
//   * sparse — beta = 0.95 (alpha = 0.05), all signals bad: ~5% committed,
//     the regime where rejection sampling over uniform neighbour draws burns
//     its attempt budget;
//   * very_sparse — beta = 0.98 (alpha = 0.02): ~2% committed, the extreme
//     cautious-adopter tail.
// Items processed = agent-steps, so report ns/agent via items_per_second.

const graph::graph& cached_topology(const std::string& kind, std::size_t n) {
  static std::map<std::pair<std::string, std::size_t>, graph::graph> cache;
  const auto key = std::make_pair(kind, n);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;
  scenario::topology_spec spec;
  using family = scenario::topology_spec::family_kind;
  if (kind == "ring") {
    spec.family = family::ring;
  } else if (kind == "torus") {
    spec.family = family::torus;
  } else if (kind == "smallworld") {
    spec.family = family::watts_strogatz;
    spec.degree = 5;
    spec.rewire_probability = 0.1;
  } else if (kind == "ba") {
    spec.family = family::barabasi_albert;
    spec.degree = 5;
  } else if (kind == "two_cliques") {
    spec.family = family::two_cliques;
    spec.bridges = 1;
  } else {
    throw std::invalid_argument{"unknown bench topology"};
  }
  return cache.emplace(key, scenario::build_topology(spec, n)).first->second;
}

void network_step_benchmark(benchmark::State& state, const std::string& kind,
                            double beta, std::vector<std::uint8_t> rewards,
                            core::kernel_kind kernel = core::kernel_kind::auto_select) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::graph& g = cached_topology(kind, n);

  core::dynamics_params p;
  p.num_options = 2;
  p.mu = 0.05;
  p.beta = beta;
  core::finite_dynamics dyn{p, n};
  dyn.set_topology(&g);
  dyn.set_kernel(kernel);

  rng gen{8};
  for (int t = 0; t < 30; ++t) dyn.step(rewards, gen);  // past the transient

  for (auto _ : state) dyn.step(rewards, gen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_network_step_ring(benchmark::State& state) {
  network_step_benchmark(state, "ring", 0.62, {1, 0});
}
BENCHMARK(BM_network_step_ring)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_torus(benchmark::State& state) {
  network_step_benchmark(state, "torus", 0.62, {1, 0});
}
BENCHMARK(BM_network_step_torus)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_smallworld(benchmark::State& state) {
  network_step_benchmark(state, "smallworld", 0.62, {1, 0});
}
BENCHMARK(BM_network_step_smallworld)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_ba(benchmark::State& state) {
  network_step_benchmark(state, "ba", 0.62, {1, 0});
}
BENCHMARK(BM_network_step_ba)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_two_cliques(benchmark::State& state) {
  network_step_benchmark(state, "two_cliques", 0.62, {1, 0});
}
BENCHMARK(BM_network_step_two_cliques)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_network_step_ba_sparse(benchmark::State& state) {
  network_step_benchmark(state, "ba", 0.95, {0, 0});
}
BENCHMARK(BM_network_step_ba_sparse)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_ring_sparse(benchmark::State& state) {
  network_step_benchmark(state, "ring", 0.95, {0, 0});
}
BENCHMARK(BM_network_step_ring_sparse)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_ba_very_sparse(benchmark::State& state) {
  network_step_benchmark(state, "ba", 0.98, {0, 0});
}
BENCHMARK(BM_network_step_ba_very_sparse)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_ring_very_sparse(benchmark::State& state) {
  network_step_benchmark(state, "ring", 0.98, {0, 0});
}
BENCHMARK(BM_network_step_ring_very_sparse)->Arg(1000000)->Unit(benchmark::kMicrosecond);

// Scalar-pinned twins of the headline network steps: the default runs
// above auto-select the v3 SIMD kernel when the host has one, so the
// scalar/auto pair in one report is the measured kernel speedup (the
// "network" name keeps them inside the CI perf-smoke filter).
void BM_network_step_ring_scalar(benchmark::State& state) {
  network_step_benchmark(state, "ring", 0.62, {1, 0}, core::kernel_kind::scalar);
}
BENCHMARK(BM_network_step_ring_scalar)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_network_step_ba_scalar(benchmark::State& state) {
  network_step_benchmark(state, "ba", 0.62, {1, 0}, core::kernel_kind::scalar);
}
BENCHMARK(BM_network_step_ba_scalar)->Arg(1000000)->Unit(benchmark::kMicrosecond);

// --- raw v3 kernels, no engine around them ----------------------------------
//
// Every agent sees the same small committed-neighbour row, so the working
// set is the SoA arrays alone: this is the per-agent cost of the sampling
// arithmetic itself (counter RNG + stage 1 + branchless stage 2), the
// number the DESIGN.md kernel table quotes.  The generic-TU twin gives the
// same loop compiled without vector target flags.

void kernel_net2_benchmark(benchmark::State& state, core::kernel::net2_fn fn) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint32_t> rows(n, 3U | (1U << 16));
  std::vector<std::int32_t> previous(n);
  std::vector<std::int32_t> choices(n, -1);
  std::vector<std::uint64_t> changed(n);
  rng fill{12};
  for (auto& c : previous) {
    c = static_cast<std::int32_t>(fill.next_u64() % 3) - 1;
  }
  rng gen{13};
  for (auto _ : state) {
    std::uint32_t changed_len = 0;
    std::uint64_t stage[2] = {0, 0};
    std::uint64_t adopt[2] = {0, 0};
    core::kernel::net2_args a;
    a.step_seed = gen.next_u64();
    a.lo = 0;
    a.hi = n;
    a.rows = rows.data();
    a.previous = previous.data();
    a.choices = choices.data();
    a.t_mu = prob_to_u64(0.05);
    a.thr_explore[0] = prob_to_u64(0.05 * 0.62);
    a.thr_explore[1] = prob_to_u64(0.05 * 0.38);
    a.thr_copy[0] = prob_to_u64(0.05 + 0.95 * 0.62);
    a.thr_copy[1] = prob_to_u64(0.05 + 0.95 * 0.38);
    a.changed = changed.data();
    a.changed_len = &changed_len;
    a.stage = stage;
    a.adopt = adopt;
    fn(a);
    benchmark::DoNotOptimize(changed_len);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_kernel_net2_active(benchmark::State& state) {
  kernel_net2_benchmark(state, core::kernel::net2_step());
}
BENCHMARK(BM_kernel_net2_active)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_kernel_net2_generic(benchmark::State& state) {
  kernel_net2_benchmark(state, core::kernel::net2_step_generic);
}
BENCHMARK(BM_kernel_net2_generic)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void kernel_mixed_benchmark(benchmark::State& state, core::kernel::mixed_fn fn) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t m = 10;
  const std::vector<std::uint64_t> alpha_thr(n, prob_to_u64(0.35));
  const std::vector<std::uint64_t> beta_thr(n, prob_to_u64(0.65));
  std::vector<std::uint64_t> pop_cdf(m - 1);
  for (std::size_t j = 0; j + 1 < m; ++j) {
    pop_cdf[j] = prob_to_u64(static_cast<double>(j + 1) / static_cast<double>(m));
  }
  std::vector<std::int32_t> choices(n, -1);
  std::vector<std::uint32_t> considered(n);
  rng gen{14};
  for (auto _ : state) {
    core::kernel::mixed_args a;
    a.step_seed = gen.next_u64();
    a.n = n;
    a.m = m;
    a.t_mu = prob_to_u64(0.05);
    a.pop_cdf = pop_cdf.data();
    a.reward_bits = 0x155;
    a.alpha_thr = alpha_thr.data();
    a.beta_thr = beta_thr.data();
    a.choices = choices.data();
    a.considered = considered.data();
    fn(a);
    benchmark::DoNotOptimize(choices.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_kernel_mixed_active(benchmark::State& state) {
  kernel_mixed_benchmark(state, core::kernel::mixed_step());
}
BENCHMARK(BM_kernel_mixed_active)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_kernel_mixed_generic(benchmark::State& state) {
  kernel_mixed_benchmark(state, core::kernel::mixed_step_generic);
}
BENCHMARK(BM_kernel_mixed_generic)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_hedge_update(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  algo::hedge policy{m, 0.1};
  rng gen{10};
  const auto rewards = random_rewards(m, gen);
  for (auto _ : state) policy.update(rewards);
}
BENCHMARK(BM_hedge_update)->Arg(10)->Arg(100);

/// Minimal ping-pong node for event-loop throughput.
class pong_node final : public netsim::node {
 public:
  void on_start(netsim::context& ctx) override {
    if (ctx.self() == 0) {
      netsim::message m;
      m.kind = 1;
      ctx.send(1, m);
    }
  }
  void on_message(netsim::context& ctx, const netsim::message& msg) override {
    ctx.send(msg.src, msg);
  }
  void on_timer(netsim::context&, std::int32_t) override {}
};

void BM_netsim_event_throughput(benchmark::State& state) {
  netsim::simulation sim{11};
  sim.add_node(std::make_unique<pong_node>());
  sim.add_node(std::make_unique<pong_node>());
  netsim::link_model links;
  links.base_latency = 1.0;
  sim.set_link_model(links);
  sim.start();
  for (auto _ : state) benchmark::DoNotOptimize(sim.step_one());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_netsim_event_throughput);

}  // namespace

BENCHMARK_MAIN();
