// Experiment E1 — Theorem 4.3 (infinite-population regret).
//
// Claim: for ½ < β ≤ e/(e+1), μ ≤ δ²/6, and every T ≥ ln m/δ²,
//   Regret∞(T) = η₁ − (1/T)·Σ_t Σ_j E[P^{t−1}_j R^t_j] ≤ 3δ,  δ = ln(β/(1−β)).
//
// We start from the registered "theorem-infinite" scenario, sweep its m and
// β overrides, and print measured regret at 1×, 2×, 4× and 8× the theorem's
// minimum horizon next to the 3δ bound.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "scenario/registry.h"

namespace {

using namespace sgl;

int run(const bench::standard_options& options) {
  bench::print_banner("E1: Regret of the infinite-population dynamics (Theorem 4.3)",
                      "Claim: Regret_inf(T) <= 3*delta for all T >= ln(m)/delta^2, "
                      "with mu = delta^2/6 and eta = (0.85, 0.35, ...).");

  text_table table{{"m", "beta", "delta", "T*", "T", "Regret_inf(T)", "bound 3d",
                    "within"}};

  for (const std::size_t m : {std::size_t{2}, std::size_t{10}, std::size_t{50}}) {
    for (const double beta : {0.55, 0.62, 0.73}) {
      scenario::scenario_spec spec = scenario::get_scenario("theorem-infinite");
      spec.params = core::theorem_params(m, beta);
      spec.environment.etas = env::two_level_etas(m, 0.85, 0.35);

      const double delta = spec.params.delta();
      const double bound = core::theory::infinite_regret_bound(beta);
      const auto t_star = static_cast<std::uint64_t>(
          std::ceil(std::max(core::theory::min_horizon(m, beta), 8.0)));

      for (const std::uint64_t multiple : {1ULL, 2ULL, 4ULL, 8ULL}) {
        core::run_config config;
        config.horizon = t_star * multiple;
        config.replications = options.replications;
        config.seed = options.seed;
        config.threads = options.threads;
        const core::regret_estimate est = scenario::run(spec, config).scalars;
        table.add_row({std::to_string(m), fmt(beta, 2), fmt(delta, 3),
                       std::to_string(t_star), std::to_string(config.horizon),
                       fmt_pm(est.regret.mean, est.regret.half_width),
                       fmt(bound, 3),
                       bench::verdict(est.regret.mean - est.regret.half_width <= bound)});
      }
    }
  }
  bench::emit(table, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = sgl::bench::make_standard_flags(
      "e01_infinite_regret", "Theorem 4.3: infinite-population regret <= 3 delta", 200);
  sgl::bench::standard_options options;
  int exit_code = 0;
  if (!sgl::bench::parse_standard(flags, argc, argv, options, exit_code)) return exit_code;
  return run(options);
}
